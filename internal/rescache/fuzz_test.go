package rescache

import (
	"strings"
	"testing"
	"unicode"

	"repro/internal/exec"
)

// FuzzCacheKey attacks the two properties the cache's correctness hangs
// on, without re-deriving them from the implementation under test:
//
//   - Injectivity: two non-equivalent requests must never share a key.
//     The fuzzer splits raw bytes into term slices two different ways, so
//     any separator a buggy encoding might rely on eventually appears
//     inside a term, and asserts keys collide exactly when the decoded
//     requests are equal.
//   - Canonicalization soundness: equivalent spellings must share a key.
//     Queries are assembled from the same fragments joined with two
//     different whitespace spellings — equal keys required — and with the
//     spelling difference moved inside a string literal — different keys
//     required, because literals are significant bytes.
//
// Wired into `make fuzz-smoke`.
func FuzzCacheKey(f *testing.F) {
	f.Add("search,engine", "search;engine", "For", "$a", "in", " ", "\n\t", uint(3), uint(3))
	f.Add("a\x00b", "a,b", "Score", "using", "ScoreFoo", "  ", " ", uint(0), uint(1))
	f.Add("", ",", "x", "", "y", "\t", "\r\n", uint(10), uint(10))
	f.Add("‘‘t’’", "t", "Pick", "“q”", "'s'", " \v", " ", uint(1), uint(2))

	f.Fuzz(func(t *testing.T, rawA, rawB, f1, f2, f3, wsA, wsB string, topKA, topKB uint) {
		// --- Injectivity across the terms encoding ---------------------
		termsA := strings.Split(rawA, ",")
		termsB := strings.Split(rawB, ";")
		optsA := TermOpts{TopK: int(topKA % 64)}
		optsB := TermOpts{TopK: int(topKB % 64)}
		kA := TermKey(1, termsA, optsA)
		kB := TermKey(1, termsB, optsB)
		equal := slicesEqual(termsA, termsB) && optsA.TopK == optsB.TopK
		if (kA == kB) != equal {
			t.Fatalf("TermKey collision mismatch: terms %q/%q topK %d/%d: keys equal=%v, requests equal=%v",
				termsA, termsB, optsA.TopK, optsB.TopK, kA == kB, equal)
		}
		// A different generation must always change the key.
		if TermKey(2, termsA, optsA) == kA {
			t.Fatalf("generation not part of the key for terms %q", termsA)
		}
		// A different family with an identical payload must never collide.
		if pk := PhraseKey(1, termsA, exec.Limits{}); pk.raw == kA.raw {
			t.Fatalf("phrase/terms family collision for %q", termsA)
		}

		// --- Whitespace canonicalization -------------------------------
		clean := func(s string) string {
			var b strings.Builder
			for i := 0; i < len(s); i++ {
				c := s[i]
				// Drop whitespace (per the lexer's byte-wise test), quote
				// openers (every typographic quote starts 0xE2), and the
				// separator bytes reused above.
				if unicode.IsSpace(rune(c)) || c == '"' || c == '\'' || c == 0xE2 || c == ',' || c == ';' {
					continue
				}
				b.WriteByte(c)
			}
			return b.String()
		}
		ws := func(s string) string {
			const chars = " \t\n\r"
			var b strings.Builder
			b.WriteByte(' ')
			for i := 0; i < len(s) && i < 8; i++ {
				b.WriteByte(chars[int(s[i])%len(chars)])
			}
			return b.String()
		}
		g1, g2, g3 := clean(f1), clean(f2), clean(f3)
		sa, sb := ws(wsA), ws(wsB)
		qa := g1 + sa + g2 + sa + g3
		qb := g1 + sb + g2 + sb + g3
		if QueryKey(7, qa, exec.Limits{}) != QueryKey(7, qb, exec.Limits{}) {
			t.Fatalf("whitespace spellings split the key:\n  %q\n  %q", qa, qb)
		}
		if n := NormalizeQuery(qa); NormalizeQuery(n) != n {
			t.Fatalf("NormalizeQuery not idempotent on %q: %q -> %q", qa, n, NormalizeQuery(n))
		}
		// Move the spelling difference inside a literal: now it is
		// significant and the keys must differ.
		la := g1 + `"` + sa + `"` + g2
		lb := g1 + `"` + sb + `"` + g2
		if sa != sb && QueryKey(7, la, exec.Limits{}) == QueryKey(7, lb, exec.Limits{}) {
			t.Fatalf("string-literal bytes folded:\n  %q\n  %q", la, lb)
		}
	})
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

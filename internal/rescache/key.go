package rescache

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"strings"
	"unicode"

	"repro/internal/exec"
)

// Cache keys. A key is an injective encoding of (query family, snapshot
// generation, canonicalized query, effective resource limits): two calls
// share a key exactly when the engine is obliged to return byte-identical
// results for them. Injectivity is load-bearing — a collision between two
// non-equivalent queries would serve one query's results for the other —
// so every variable-length field is length-prefixed (no separator to
// inject through) and FuzzCacheKey attacks the property directly.
//
// Canonicalization goes the other way: spellings the engine provably
// cannot distinguish are folded together so they share cache entries.
//
//   - Extended-XQuery sources are whitespace-normalized outside string
//     literals (the xq lexer skips any whitespace run between tokens, and
//     the Return clause's raw template only affects rendering, which is
//     never cached).
//   - Trailing 1.0 term weights are trimmed: scoring.SimpleScorer and
//     ComplexScorer default every out-of-range weight to 1.
//   - TopK and MinScore at or below zero mean "disabled" and fold to 0.
//
// Execution hints that cannot change results stay out of the key: the
// Parallel worker count (exec.SortRanked's total order makes worker
// scheduling invisible) and the Enhanced child-count mode (proven
// result-equivalent to navigation by the exec differential suites).

// Family tags the query family a key belongs to, so identical payloads
// from different entry points can never collide.
type family byte

const (
	familyTerms  family = 't'
	familyPhrase family = 'p'
	familyQuery  family = 'q'
)

// Key identifies one cacheable computation. The zero Key is invalid.
type Key struct {
	raw string // injective encoding incl. family and generation
	gen uint64
}

// Generation returns the snapshot generation baked into the key.
func (k Key) Generation() uint64 { return k.gen }

// shardIndex hashes the key onto one of n cache stripes.
func (k Key) shardIndex(n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(k.raw))
	return int(h.Sum32() % uint32(n))
}

// keyEnc builds the length-prefixed encoding.
type keyEnc struct{ b []byte }

func newKeyEnc(f family, gen uint64) *keyEnc {
	e := &keyEnc{b: make([]byte, 0, 64)}
	e.b = append(e.b, byte(f))
	e.b = binary.BigEndian.AppendUint64(e.b, gen)
	return e
}

func (e *keyEnc) str(s string) {
	e.b = binary.AppendUvarint(e.b, uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *keyEnc) strs(ss []string) {
	e.b = binary.AppendUvarint(e.b, uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

func (e *keyEnc) i64(v int64) {
	e.b = binary.AppendVarint(e.b, v)
}

func (e *keyEnc) f64(v float64) {
	e.b = binary.BigEndian.AppendUint64(e.b, math.Float64bits(v))
}

func (e *keyEnc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

func (e *keyEnc) limits(l exec.Limits) {
	e.i64(int64(l.Timeout))
	e.i64(l.MaxResults)
	e.i64(l.MaxAccesses)
	e.i64(int64(l.CheckEvery))
}

func (e *keyEnc) key(gen uint64) Key {
	return Key{raw: string(e.b), gen: gen}
}

// TermOpts are the result-relevant term-search options entering the key:
// the fields of db.TermSearchOptions minus the execution hints.
type TermOpts struct {
	Complex  bool
	TopK     int
	MinScore float64
	Weights  []float64
	// Limits is the effective per-call budget (after the database default
	// has been applied).
	Limits exec.Limits
}

// canonWeights trims trailing 1.0 entries: the scorers default every
// weight past the end of the slice to 1, so the spellings are equivalent.
func canonWeights(w []float64) []float64 {
	n := len(w)
	for n > 0 && w[n-1] == 1 {
		n--
	}
	return w[:n]
}

// TermKey builds the cache key for a term search.
func TermKey(gen uint64, terms []string, o TermOpts) Key {
	e := newKeyEnc(familyTerms, gen)
	e.strs(terms)
	e.bool(o.Complex)
	topK := o.TopK
	if topK < 0 {
		topK = 0
	}
	e.i64(int64(topK))
	min := o.MinScore
	if min <= 0 {
		min = 0
	}
	e.f64(min)
	w := canonWeights(o.Weights)
	e.i64(int64(len(w)))
	for _, v := range w {
		e.f64(v)
	}
	e.limits(o.Limits)
	return e.key(gen)
}

// PhraseKey builds the cache key for a phrase search.
func PhraseKey(gen uint64, phrase []string, limits exec.Limits) Key {
	e := newKeyEnc(familyPhrase, gen)
	e.strs(phrase)
	e.limits(limits)
	return e.key(gen)
}

// QueryKey builds the cache key for an extended-XQuery evaluation.
func QueryKey(gen uint64, src string, limits exec.Limits) Key {
	e := newKeyEnc(familyQuery, gen)
	e.str(NormalizeQuery(src))
	e.limits(limits)
	return e.key(gen)
}

// typographic quote pairs accepted by the xq lexer, checked in the same
// order.
var quotePairs = []struct{ open, close string }{
	{"‘‘", "’’"}, {"“", "”"},
}

// NormalizeQuery collapses every whitespace run outside a string literal
// to a single space and trims the ends. The scan mirrors the xq lexer
// byte for byte — the same four quote forms, no escapes, and the lexer's
// per-byte unicode.IsSpace test — so two sources normalize equal only if
// the lexer tokenizes them identically. Unterminated literals (a parse
// error downstream) are carried verbatim to keep the fold deterministic.
func NormalizeQuery(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	pend := false // a whitespace run is pending
	sep := func() {
		if pend && b.Len() > 0 {
			b.WriteByte(' ')
		}
		pend = false
	}
	i := 0
scan:
	for i < len(src) {
		for _, q := range quotePairs {
			if strings.HasPrefix(src[i:], q.open) {
				end := strings.Index(src[i+len(q.open):], q.close)
				sep()
				if end < 0 {
					b.WriteString(src[i:])
					i = len(src)
				} else {
					tot := len(q.open) + end + len(q.close)
					b.WriteString(src[i : i+tot])
					i += tot
				}
				continue scan
			}
		}
		c := src[i]
		if c == '"' || c == '\'' {
			end := strings.IndexByte(src[i+1:], c)
			sep()
			if end < 0 {
				b.WriteString(src[i:])
				i = len(src)
			} else {
				b.WriteString(src[i : i+end+2])
				i += end + 2
			}
			continue
		}
		if unicode.IsSpace(rune(c)) {
			pend = true
			i++
			continue
		}
		sep()
		b.WriteByte(c)
		i++
	}
	return b.String()
}

// Package rescache is a sharded, bounded-memory result cache for the
// query facades, keyed by (normalized query, effective limits, snapshot
// generation). The generation component makes invalidation exact and
// free: every mutation advances the live index's generation, callers key
// lookups by the generation they observe at entry, and so a stale
// generation is simply never looked up again. A background sweeper
// reclaims the memory of dead-generation entries; an LRU with per-entry
// cost accounting bounds the rest.
//
// Coherence argument (DESIGN.md §13): a caller reads the generation g
// before computing, and the snapshot it then evaluates over is at least
// as new as g. An entry stored under g therefore never holds results
// older than g; it can hold results newer than g only when a mutation was
// in flight during the compute, and the entry is only ever served to
// callers that also observed g — i.e. whose requests are themselves
// concurrent with that mutation, for which serving the newer result is a
// valid linearization. Once the mutation completes, every new caller
// observes a later generation and the entry is unreachable. In quiescent
// states cached results are exactly the uncached results; the
// differential suite asserts byte equality.
package rescache

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Config configures a cache.
type Config struct {
	// MaxBytes is the total memory budget, divided evenly across the
	// stripes. Required (New returns nil when it is not positive).
	MaxBytes int64
	// Shards is the number of independently-locked stripes (default 16).
	Shards int
	// SweepEvery is the dead-generation sweep interval (default 500ms).
	// Negative disables the sweeper (tests drive Sweep directly).
	SweepEvery time.Duration
	// Generation reports the owner's current generation token; ok=false
	// means the owner cannot produce a stable token yet (no sweep then).
	// Nil disables the sweeper.
	Generation func() (gen uint64, ok bool)
	// Metrics receives the tix_rescache_* instrumentation (default: the
	// process-wide registry).
	Metrics *metrics.Registry
}

// entry is one cached result, a node of its stripe's intrusive LRU list.
type entry struct {
	key        string
	gen        uint64
	val        any
	cost       int64
	prev, next *entry
}

// stripe is one independently-locked cache shard with its own LRU order
// and byte budget.
type stripe struct {
	mu      sync.Mutex
	entries map[string]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	bytes   int64
}

// Cache is a sharded LRU result cache. All methods are safe for
// concurrent use.
type Cache struct {
	stripes  []*stripe
	perShard int64
	genFn    func() (uint64, bool)

	// Monotonic counters for Stats; mirrored into the metrics registry.
	hits, misses, puts, updates  atomic.Int64
	evictions, rejected, genmiss atomic.Int64
	curBytes, curEntries         atomic.Int64
	mHits, mMisses, mEvictions   *metrics.Counter
	mRejected, mGenMiss          *metrics.Counter
	mBytes, mEntries             *metrics.Gauge

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// entryOverhead approximates the fixed per-entry bookkeeping cost (entry
// struct, map bucket share, interface header) charged on top of the key
// and value bytes.
const entryOverhead = 120

// New creates a cache and starts its sweeper (unless disabled). Returns
// nil when cfg.MaxBytes is not positive — a nil *Cache is not usable, so
// callers gate on it.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		return nil
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if int64(cfg.Shards) > cfg.MaxBytes {
		cfg.Shards = 1
	}
	if cfg.SweepEvery == 0 {
		cfg.SweepEvery = 500 * time.Millisecond
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	c := &Cache{
		stripes:  make([]*stripe, cfg.Shards),
		perShard: cfg.MaxBytes / int64(cfg.Shards),
		genFn:    cfg.Generation,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),

		mHits:      reg.Counter("tix_rescache_hits_total"),
		mMisses:    reg.Counter("tix_rescache_misses_total"),
		mEvictions: reg.Counter("tix_rescache_evictions_total"),
		mRejected:  reg.Counter("tix_rescache_rejected_total"),
		mGenMiss:   reg.Counter("tix_rescache_genmiss_total"),
		mBytes:     reg.Gauge("tix_rescache_bytes"),
		mEntries:   reg.Gauge("tix_rescache_entries"),
	}
	for i := range c.stripes {
		c.stripes[i] = &stripe{entries: map[string]*entry{}}
	}
	if cfg.Generation != nil && cfg.SweepEvery > 0 {
		go c.sweeper(cfg.SweepEvery)
	} else {
		close(c.done)
	}
	return c
}

// sweeper periodically evicts entries whose generation is no longer
// current, reclaiming memory that exact invalidation alone would strand.
func (c *Cache) sweeper(every time.Duration) {
	defer close(c.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			if gen, ok := c.genFn(); ok {
				c.Sweep(gen)
			}
		}
	}
}

// Close stops the sweeper and waits for it to exit. Idempotent; the
// cache itself remains usable (Get/Put still work), so a Close racing
// late queries is safe.
func (c *Cache) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	<-c.done
}

// list manipulation; caller holds s.mu.

func (s *stripe) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *stripe) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *stripe) moveFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// removeLocked drops e from the stripe and returns its cost.
func (s *stripe) removeLocked(e *entry) int64 {
	s.unlink(e)
	delete(s.entries, e.key)
	s.bytes -= e.cost
	return e.cost
}

// Get returns the value cached under k. The caller must not mutate the
// returned value; the typed GetSlice helper hands out defensive copies.
func (c *Cache) Get(k Key) (any, bool) {
	s := c.stripes[k.shardIndex(len(c.stripes))]
	s.mu.Lock()
	e, ok := s.entries[k.raw]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		c.mMisses.Inc()
		return nil, false
	}
	if e.gen != k.gen {
		// Defense in depth: the generation is part of the encoded key, so
		// a mismatch can only mean a key-encoding bug. Refuse the hit and
		// drop the entry rather than risk serving a stale result; the
		// chaos drill asserts this counter stays zero.
		cost := s.removeLocked(e)
		s.mu.Unlock()
		c.accountRemoval(1, cost)
		c.genmiss.Add(1)
		c.mGenMiss.Inc()
		c.misses.Add(1)
		c.mMisses.Inc()
		return nil, false
	}
	s.moveFront(e)
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	c.mHits.Inc()
	return v, true
}

// Put caches v under k at the given cost (bytes; the key and fixed entry
// overhead are added). Oversized entries — cost above a full stripe
// budget — are rejected rather than evicting an entire stripe for one
// entry. The caller must not mutate v afterwards; the typed PutSlice
// helper stores a private copy.
func (c *Cache) Put(k Key, v any, cost int64) {
	if cost < 0 {
		cost = 0
	}
	cost += int64(len(k.raw)) + entryOverhead
	if cost > c.perShard {
		c.rejected.Add(1)
		c.mRejected.Inc()
		return
	}
	s := c.stripes[k.shardIndex(len(c.stripes))]
	var evicted int
	var freed int64
	s.mu.Lock()
	if e, ok := s.entries[k.raw]; ok {
		s.bytes += cost - e.cost
		c.curBytes.Add(cost - e.cost)
		e.val, e.cost, e.gen = v, cost, k.gen
		s.moveFront(e)
		c.updates.Add(1)
	} else {
		e = &entry{key: k.raw, gen: k.gen, val: v, cost: cost}
		s.entries[k.raw] = e
		s.pushFront(e)
		s.bytes += cost
		c.curBytes.Add(cost)
		c.curEntries.Add(1)
		c.puts.Add(1)
	}
	for s.bytes > c.perShard && s.tail != nil && s.tail != s.head {
		freed += s.removeLocked(s.tail)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.accountRemoval(evicted, freed)
	}
	c.mBytes.Set(c.curBytes.Load())
	c.mEntries.Set(c.curEntries.Load())
}

// accountRemoval updates the global accounting for n removed entries
// worth freed bytes.
func (c *Cache) accountRemoval(n int, freed int64) {
	c.curBytes.Add(-freed)
	c.curEntries.Add(int64(-n))
	c.evictions.Add(int64(n))
	c.mEvictions.Add(int64(n))
	c.mBytes.Set(c.curBytes.Load())
	c.mEntries.Set(c.curEntries.Load())
}

// Sweep evicts every entry whose generation differs from current. The
// sweeper calls it periodically; tests call it directly.
func (c *Cache) Sweep(current uint64) {
	for _, s := range c.stripes {
		var n int
		var freed int64
		s.mu.Lock()
		for e := s.head; e != nil; {
			next := e.next
			if e.gen != current {
				freed += s.removeLocked(e)
				n++
			}
			e = next
		}
		s.mu.Unlock()
		if n > 0 {
			c.accountRemoval(n, freed)
		}
	}
}

// Purge evicts everything. Owners call it when their generation counter
// may regress (index adoption, store rebuild), so entries keyed under the
// old counter can never collide with keys minted under the new one.
func (c *Cache) Purge() {
	for _, s := range c.stripes {
		var n int
		var freed int64
		s.mu.Lock()
		for e := s.head; e != nil; {
			next := e.next
			freed += s.removeLocked(e)
			n++
			e = next
		}
		s.mu.Unlock()
		if n > 0 {
			c.accountRemoval(n, freed)
		}
	}
}

// Stats is a consistent-enough snapshot of the cache counters for tests
// and introspection. In a quiescent cache Puts - Evictions == Entries
// and Bytes equals the summed entry costs.
type Stats struct {
	Hits, Misses      int64
	Puts, Updates     int64
	Evictions         int64
	Rejected, GenMiss int64
	Bytes, Entries    int64
}

// Stats returns the current counter values.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Updates:   c.updates.Load(),
		Evictions: c.evictions.Load(),
		Rejected:  c.rejected.Load(),
		GenMiss:   c.genmiss.Load(),
		Bytes:     c.curBytes.Load(),
		Entries:   c.curEntries.Load(),
	}
}

// GetSlice returns a defensive copy of the slice cached under k. The
// copy keeps callers that rewrite results in place (the shard facade's
// global-id translation) from corrupting the cached master.
func GetSlice[T any](c *Cache, k Key) ([]T, bool) {
	v, ok := c.Get(k)
	if !ok {
		return nil, false
	}
	s, ok := v.([]T)
	if !ok {
		return nil, false
	}
	if s == nil {
		return nil, true
	}
	out := make([]T, len(s))
	copy(out, s)
	return out, true
}

// PutSlice caches a private copy of s under k, costed at the slice's
// backing-array footprint. A nil slice round-trips as nil, so cached
// replies stay byte-identical to computed ones.
func PutSlice[T any](c *Cache, k Key, s []T) {
	var cp []T
	if s != nil {
		cp = make([]T, len(s))
		copy(cp, s)
	}
	elem := int64(reflect.TypeOf((*T)(nil)).Elem().Size())
	c.Put(k, cp, 24+int64(len(s))*elem)
}

// checkInvariants recomputes the per-stripe accounting from scratch and
// reports any divergence from the atomics — the stress suite's oracle.
func (c *Cache) checkInvariants() error {
	var bytes, entries int64
	for _, s := range c.stripes {
		s.mu.Lock()
		var sb int64
		var n int64
		for e := s.head; e != nil; e = e.next {
			sb += e.cost
			n++
		}
		if sb != s.bytes {
			s.mu.Unlock()
			return fmt.Errorf("stripe bytes %d != recomputed %d", s.bytes, sb)
		}
		if n != int64(len(s.entries)) {
			s.mu.Unlock()
			return fmt.Errorf("stripe list length %d != map size %d", n, len(s.entries))
		}
		if s.bytes < 0 {
			s.mu.Unlock()
			return fmt.Errorf("stripe bytes negative: %d", s.bytes)
		}
		bytes += sb
		entries += n
		s.mu.Unlock()
	}
	// The atomics lag the stripe locks under concurrency; they must match
	// exactly only once the cache is quiescent, which is when the stress
	// suite calls this.
	if got := c.curBytes.Load(); got != bytes {
		return fmt.Errorf("bytes counter %d != recomputed %d", got, bytes)
	}
	if got := c.curEntries.Load(); got != entries {
		return fmt.Errorf("entries counter %d != recomputed %d", got, entries)
	}
	st := c.Stats()
	if st.Puts-st.Evictions != st.Entries {
		return fmt.Errorf("puts %d - evictions %d != entries %d", st.Puts, st.Evictions, st.Entries)
	}
	return nil
}

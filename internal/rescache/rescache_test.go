package rescache

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/metrics"
)

// newTestCache builds a sweeper-less cache for deterministic unit tests.
func newTestCache(t *testing.T, maxBytes int64, shards int) *Cache {
	t.Helper()
	c := New(Config{
		MaxBytes:   maxBytes,
		Shards:     shards,
		SweepEvery: -1,
		Metrics:    metrics.NewRegistry(),
	})
	if c == nil {
		t.Fatal("New returned nil for a positive budget")
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewRejectsNonPositiveBudget(t *testing.T) {
	if c := New(Config{MaxBytes: 0}); c != nil {
		t.Error("New(MaxBytes: 0) != nil")
	}
	if c := New(Config{MaxBytes: -1}); c != nil {
		t.Error("New(MaxBytes: -1) != nil")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := newTestCache(t, 1<<20, 4)
	k := TermKey(7, []string{"search", "engine"}, TermOpts{TopK: 5})
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	want := []exec.ScoredNode{{Doc: 1, Ord: 2, Score: 3.5}}
	PutSlice(c, k, want)
	got, ok := GetSlice[exec.ScoredNode](c, k)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("GetSlice = %v, %v; want %v, true", got, ok, want)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
	if st.Bytes <= 0 || st.Entries != 1 {
		t.Errorf("accounting = %d bytes / %d entries, want positive / 1", st.Bytes, st.Entries)
	}
}

func TestGetSliceCopies(t *testing.T) {
	c := newTestCache(t, 1<<20, 1)
	k := PhraseKey(1, []string{"alpha", "beta"}, exec.Limits{})
	orig := []exec.PhraseMatch{{Doc: 4, Node: 5, Pos: 6}}
	PutSlice(c, k, orig)
	orig[0].Doc = 99 // the caller's slice is not the cached master

	got, _ := GetSlice[exec.PhraseMatch](c, k)
	if got[0].Doc != 4 {
		t.Fatalf("put did not copy: cached Doc = %d, want 4", got[0].Doc)
	}
	got[0].Doc = 77 // nor is the returned slice
	again, _ := GetSlice[exec.PhraseMatch](c, k)
	if again[0].Doc != 4 {
		t.Fatalf("get did not copy: cached Doc = %d, want 4", again[0].Doc)
	}
}

func TestNilSliceRoundTripsAsNil(t *testing.T) {
	c := newTestCache(t, 1<<20, 1)
	k := PhraseKey(2, []string{"nothing"}, exec.Limits{})
	PutSlice(c, k, []exec.PhraseMatch(nil))
	got, ok := GetSlice[exec.PhraseMatch](c, k)
	if !ok {
		t.Fatal("nil-slice entry missed")
	}
	if got != nil {
		t.Fatalf("cached nil came back non-nil: %#v", got)
	}
}

func TestLRUEvictsOldestUnderPressure(t *testing.T) {
	c := newTestCache(t, 2048, 1)
	keyOf := func(i int) Key { return TermKey(1, []string{fmt.Sprintf("t%03d", i)}, TermOpts{}) }
	for i := 0; i < 64; i++ {
		PutSlice(c, keyOf(i), make([]exec.ScoredNode, 4))
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under a 2KiB budget")
	}
	if st.Bytes > 2048 {
		t.Fatalf("bytes %d above budget", st.Bytes)
	}
	if _, ok := c.Get(keyOf(63)); !ok {
		t.Error("most recent entry evicted")
	}
	if _, ok := c.Get(keyOf(0)); ok {
		t.Error("oldest entry survived pressure")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUTouchOnGetProtectsHotEntry(t *testing.T) {
	c := newTestCache(t, 2048, 1)
	hot := TermKey(1, []string{"hot"}, TermOpts{})
	PutSlice(c, hot, make([]exec.ScoredNode, 4))
	for i := 0; i < 64; i++ {
		if _, ok := GetSlice[exec.ScoredNode](c, hot); !ok {
			t.Fatalf("hot entry evicted after %d inserts despite touches", i)
		}
		PutSlice(c, TermKey(1, []string{fmt.Sprintf("cold%03d", i)}, TermOpts{}), make([]exec.ScoredNode, 4))
	}
}

func TestOversizeEntryRejected(t *testing.T) {
	c := newTestCache(t, 1024, 1)
	PutSlice(c, TermKey(1, []string{"big"}, TermOpts{}), make([]exec.ScoredNode, 10_000))
	st := c.Stats()
	if st.Rejected != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want the oversized put rejected and nothing stored", st)
	}
}

func TestSweepEvictsDeadGenerationsOnly(t *testing.T) {
	c := newTestCache(t, 1<<20, 4)
	old := TermKey(1, []string{"stale"}, TermOpts{})
	cur := TermKey(2, []string{"fresh"}, TermOpts{})
	PutSlice(c, old, make([]exec.ScoredNode, 1))
	PutSlice(c, cur, make([]exec.ScoredNode, 1))
	c.Sweep(2)
	if _, ok := c.Get(old); ok {
		t.Error("dead-generation entry survived the sweep")
	}
	if _, ok := c.Get(cur); !ok {
		t.Error("current-generation entry swept")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want exactly the stale entry evicted", st)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPurgeEmptiesEverything(t *testing.T) {
	c := newTestCache(t, 1<<20, 4)
	for i := 0; i < 32; i++ {
		PutSlice(c, TermKey(uint64(i%3), []string{fmt.Sprintf("t%d", i)}, TermOpts{}), make([]exec.ScoredNode, 2))
	}
	c.Purge()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after purge: %d entries / %d bytes, want 0 / 0", st.Entries, st.Bytes)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundSweeperEvictsDeadGenerations(t *testing.T) {
	var gen atomic.Uint64
	gen.Store(1)
	c := New(Config{
		MaxBytes:   1 << 20,
		SweepEvery: time.Millisecond,
		Generation: func() (uint64, bool) { return gen.Load(), true },
		Metrics:    metrics.NewRegistry(),
	})
	defer c.Close()
	PutSlice(c, TermKey(1, []string{"x"}, TermOpts{}), make([]exec.ScoredNode, 1))
	gen.Store(2)
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Entries != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.Stats().Entries; got != 0 {
		t.Fatalf("sweeper left %d dead-generation entries after 5s", got)
	}
}

func TestMetricsMirrorStats(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(Config{MaxBytes: 1 << 20, Shards: 2, SweepEvery: -1, Metrics: reg})
	defer c.Close()
	k := TermKey(3, []string{"m"}, TermOpts{})
	PutSlice(c, k, make([]exec.ScoredNode, 2))
	c.Get(k)
	c.Get(TermKey(3, []string{"absent"}, TermOpts{}))
	st := c.Stats()
	checks := []struct {
		name string
		want int64
	}{
		{"tix_rescache_hits_total", st.Hits},
		{"tix_rescache_misses_total", st.Misses},
		{"tix_rescache_evictions_total", st.Evictions},
		{"tix_rescache_genmiss_total", 0},
	}
	for _, ck := range checks {
		if got := reg.Counter(ck.name).Value(); got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, got, ck.want)
		}
	}
	if got := reg.Gauge("tix_rescache_bytes").Value(); got != st.Bytes {
		t.Errorf("tix_rescache_bytes = %d, want %d", got, st.Bytes)
	}
	if got := reg.Gauge("tix_rescache_entries").Value(); got != st.Entries {
		t.Errorf("tix_rescache_entries = %d, want %d", got, st.Entries)
	}
}

// Key canonicalization and injectivity unit checks; FuzzCacheKey attacks
// the same properties adversarially.

func TestKeyEquivalentSpellingsShare(t *testing.T) {
	base := TermKey(5, []string{"a", "b"}, TermOpts{TopK: 3})
	cases := []Key{
		TermKey(5, []string{"a", "b"}, TermOpts{TopK: 3, Weights: []float64{1, 1}}),
		TermKey(5, []string{"a", "b"}, TermOpts{TopK: 3, MinScore: -1}),
		TermKey(5, []string{"a", "b"}, TermOpts{TopK: 3, Weights: []float64{}}),
	}
	for i, k := range cases {
		if k != base {
			t.Errorf("case %d: equivalent spelling produced a different key", i)
		}
	}
}

func TestKeyNonEquivalentSpellingsDiffer(t *testing.T) {
	base := TermKey(5, []string{"a", "b"}, TermOpts{TopK: 3})
	cases := []Key{
		TermKey(6, []string{"a", "b"}, TermOpts{TopK: 3}),                                      // generation
		TermKey(5, []string{"a b"}, TermOpts{TopK: 3}),                                         // term split
		TermKey(5, []string{"b", "a"}, TermOpts{TopK: 3}),                                      // order (weights pair by index)
		TermKey(5, []string{"a", "b"}, TermOpts{TopK: 4}),                                      // k
		TermKey(5, []string{"a", "b"}, TermOpts{TopK: 3, Complex: true}),                       // scoring fn
		TermKey(5, []string{"a", "b"}, TermOpts{TopK: 3, MinScore: 0.5}),                       // threshold
		TermKey(5, []string{"a", "b"}, TermOpts{TopK: 3, Weights: []float64{2}}),               // weight
		TermKey(5, []string{"a", "b"}, TermOpts{TopK: 3, Limits: exec.Limits{MaxResults: 10}}), // budget
		PhraseKey(5, []string{"a", "b"}, exec.Limits{}),                                        // family
	}
	for i, k := range cases {
		if k == base {
			t.Errorf("case %d: non-equivalent spelling shares the key", i)
		}
	}
}

func TestNormalizeQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"   ", ""},
		{"For  $a   in\n\tdocument(\"x\")//a", `For $a in document("x")//a`},
		{`Score $a using ScoreFoo($a, {"search  engine"})`, `Score $a using ScoreFoo($a, {"search  engine"})`},
		{"  'a  b'  ", "'a  b'"},
		{"a ‘‘x  y’’ b", "a ‘‘x  y’’ b"},
		{"a “x  y” b", "a “x  y” b"},
		{`"unterminated   run`, `"unterminated   run`},
	}
	for _, tc := range cases {
		if got := NormalizeQuery(tc.in); got != tc.want {
			t.Errorf("NormalizeQuery(%q) = %q, want %q", tc.in, got, tc.want)
		}
		if got := NormalizeQuery(NormalizeQuery(tc.in)); got != NormalizeQuery(tc.in) {
			t.Errorf("NormalizeQuery not idempotent on %q", tc.in)
		}
	}
}

func TestQueryKeyWhitespaceSpellings(t *testing.T) {
	a := QueryKey(1, "For  $a in\tdocument(\"x\")//a", exec.Limits{})
	b := QueryKey(1, "For $a in document(\"x\")//a", exec.Limits{})
	if a != b {
		t.Error("whitespace spellings of one query do not share a key")
	}
	c := QueryKey(1, `For $a in document("x  ")//a`, exec.Limits{})
	d := QueryKey(1, `For $a in document("x ")//a`, exec.Limits{})
	if c == d {
		t.Error("whitespace inside a string literal folded; literals must stay verbatim")
	}
}

package rescache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestStressConcurrentGetPutSweep hammers one tiny cache from many
// goroutines — gets, puts, generation sweeps and full purges racing on a
// budget small enough that eviction runs constantly — then checks the
// books: cost accounting must recompute exactly (never negative), and
// the hit/miss/put/eviction counters must reconcile with the operations
// issued and the entries left. Run under -race via `make race`.
func TestStressConcurrentGetPutSweep(t *testing.T) {
	c := New(Config{
		MaxBytes:   4096,
		Shards:     4,
		SweepEvery: -1,
		Metrics:    metrics.NewRegistry(),
	})
	defer c.Close()

	const (
		workers = 8
		iters   = 5_000
		keys    = 64
		gens    = 4
	)
	var gets atomic.Int64
	var gen atomic.Uint64
	gen.Store(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deterministic per-worker schedule; no shared RNG.
			seq := uint64(w)*2654435761 + 1
			for i := 0; i < iters; i++ {
				seq = seq*6364136223846793005 + 1442695040888963407
				k := TermKey(gen.Load()%gens+1, []string{fmt.Sprintf("k%02d", seq%keys)}, TermOpts{})
				switch seq % 7 {
				case 0, 1, 2:
					gets.Add(1)
					GetSlice[int64](c, k)
				case 3, 4, 5:
					PutSlice(c, k, make([]int64, seq%9))
				case 6:
					if seq%97 == 0 {
						c.Purge()
					} else {
						gen.Add(1)
						c.Sweep(gen.Load()%gens + 1)
					}
				}
				if c.Stats().Bytes < 0 {
					t.Error("byte accounting went negative under concurrency")
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits+st.Misses != gets.Load() {
		t.Errorf("hits %d + misses %d != gets issued %d", st.Hits, st.Misses, gets.Load())
	}
	if st.Puts-st.Evictions != st.Entries {
		t.Errorf("puts %d - evictions %d != entries %d", st.Puts, st.Evictions, st.Entries)
	}
	if st.Bytes < 0 || st.Entries < 0 {
		t.Errorf("negative accounting after stress: %d bytes / %d entries", st.Bytes, st.Entries)
	}
	t.Logf("stress: %+v", st)
}

// TestSweeperShutdownLeaksNoGoroutine proves Close joins the sweeper: the
// process goroutine count returns to its baseline after creating and
// closing many sweepered caches.
func TestSweeperShutdownLeaksNoGoroutine(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		c := New(Config{
			MaxBytes:   1 << 16,
			SweepEvery: time.Millisecond,
			Generation: func() (uint64, bool) { return 1, true },
			Metrics:    metrics.NewRegistry(),
		})
		PutSlice(c, TermKey(1, []string{"x"}, TermOpts{}), make([]int64, 4))
		c.Close()
		c.Close() // idempotent
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		t.Fatalf("goroutines = %d after closing all caches, baseline %d: sweeper leaked", got, baseline)
	}
}

// TestCloseRacingTraffic: Close while readers and writers are still
// running must not deadlock or corrupt accounting (the cache stays
// usable; only the sweeper stops).
func TestCloseRacingTraffic(t *testing.T) {
	c := New(Config{
		MaxBytes:   1 << 14,
		SweepEvery: time.Millisecond,
		Generation: func() (uint64, bool) { return 1, true },
		Metrics:    metrics.NewRegistry(),
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2_000; i++ {
				k := TermKey(1, []string{fmt.Sprintf("w%d-%d", w, i%31)}, TermOpts{})
				PutSlice(c, k, make([]int64, i%5))
				GetSlice[int64](c, k)
			}
		}(w)
	}
	c.Close()
	wg.Wait()
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

package scoring

import (
	"math"

	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// This file implements the scoring variants the paper names as the
// realistic alternatives to its deliberately simple examples:
//
//   - Sec. 3.1: "a real function would be more complex, for example,
//     using vector space cosine similarity" → CosineSim;
//   - Sec. 3.1: "we can also specify complex conditions. For instance,
//     that the score of node $4 is 0 unless the term 'search engine'
//     occurs at least once" → Conditional;
//   - Sec. 3.1: "in many IR systems, the range of a scoring function is
//     restricted to be [0,1]" → Normalized.

// CosineSim computes the vector-space cosine similarity between the direct
// text of two nodes, with raw term-frequency weights — the join-condition
// scoring the paper suggests in place of ScoreSim's count-same.
func CosineSim(tok *tokenize.Tokenizer, a, b *xmltree.Node) float64 {
	va := termVector(tok, directText(a))
	vb := termVector(tok, directText(b))
	return cosine(va, vb)
}

// CosineSimText is CosineSim over raw strings.
func CosineSimText(tok *tokenize.Tokenizer, a, b string) float64 {
	return cosine(termVector(tok, a), termVector(tok, b))
}

func termVector(tok *tokenize.Tokenizer, s string) map[string]float64 {
	v := map[string]float64{}
	for _, t := range tok.Terms(s) {
		v[t]++
	}
	return v
}

func cosine(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	dot := 0.0
	for t, wa := range a {
		if wb, ok := b[t]; ok {
			dot += wa * wb
		}
	}
	if dot == 0 {
		return 0
	}
	na, nb := 0.0, 0.0
	for _, w := range a {
		na += w * w
	}
	for _, w := range b {
		nb += w * w
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// ConditionalScorer wraps a base simple scorer with the paper's complex
// condition: the score is 0 unless every term in Required (indices into
// the count vector) occurs at least once.
type ConditionalScorer struct {
	Base     SimpleScorer
	Required []int
}

// Score applies the condition, then the base scorer.
func (c ConditionalScorer) Score(counts []int) float64 {
	for _, i := range c.Required {
		if i >= len(counts) || counts[i] == 0 {
			return 0
		}
	}
	return c.Base.Score(counts)
}

// NormalizedScorer maps another scorer's output into [0, 1) with the
// saturating transform s/(s+h), where h is the half-point score (the raw
// score that maps to 0.5). The transform is strictly monotone, so rankings
// are unchanged — only the range restriction the paper notes many IR
// systems impose is added.
type NormalizedScorer struct {
	Base interface{ Score(counts []int) float64 }
	// Half is the raw score mapped to 0.5; 0 defaults to 1.
	Half float64
}

// Score applies the saturating normalization.
func (n NormalizedScorer) Score(counts []int) float64 {
	h := n.Half
	if h <= 0 {
		h = 1
	}
	s := n.Base.Score(counts)
	if s <= 0 {
		return 0
	}
	return s / (s + h)
}

package scoring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tokenize"
)

func TestCosineSim(t *testing.T) {
	tok := tokenize.New()
	a := mustParse(`<t>internet search technology</t>`)
	b := mustParse(`<t>internet search technology</t>`)
	c := mustParse(`<t>internet cats</t>`)
	d := mustParse(`<t>quantum physics</t>`)
	if got := CosineSim(tok, a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical = %f, want 1", got)
	}
	partial := CosineSim(tok, a, c)
	if partial <= 0 || partial >= 1 {
		t.Errorf("partial = %f, want in (0,1)", partial)
	}
	if got := CosineSim(tok, a, d); got != 0 {
		t.Errorf("disjoint = %f, want 0", got)
	}
	empty := mustParse(`<t><u>nested only</u></t>`)
	if got := CosineSim(tok, a, empty); got != 0 {
		t.Errorf("empty direct text = %f, want 0", got)
	}
}

func TestCosineSimSymmetricAndBounded(t *testing.T) {
	tok := tokenize.New()
	words := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() string {
			out := ""
			for i := 0; i < rng.Intn(12); i++ {
				if out != "" {
					out += " "
				}
				out += words[rng.Intn(len(words))]
			}
			return out
		}
		x, y := gen(), gen()
		sxy := CosineSimText(tok, x, y)
		syx := CosineSimText(tok, y, x)
		if math.Abs(sxy-syx) > 1e-12 {
			return false
		}
		if sxy < 0 || sxy > 1+1e-12 {
			return false
		}
		if x != "" && CosineSimText(tok, x, x) < 1-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConditionalScorer(t *testing.T) {
	base := SimpleScorer{Weights: []float64{0.8, 0.6}}
	c := ConditionalScorer{Base: base, Required: []int{0}}
	// Primary term absent: zero regardless of secondary occurrences.
	if got := c.Score([]int{0, 5}); got != 0 {
		t.Errorf("missing required term should zero: %f", got)
	}
	// Primary present: base score.
	if got := c.Score([]int{2, 3}); math.Abs(got-(1.6+1.8)) > 1e-9 {
		t.Errorf("score = %f", got)
	}
	// Required index beyond counts fails closed.
	c2 := ConditionalScorer{Base: base, Required: []int{5}}
	if got := c2.Score([]int{9, 9}); got != 0 {
		t.Errorf("out-of-range requirement should zero: %f", got)
	}
	// No requirements behaves like the base.
	c3 := ConditionalScorer{Base: base}
	if c3.Score([]int{1, 1}) != base.Score([]int{1, 1}) {
		t.Errorf("no requirements should match base")
	}
}

func TestNormalizedScorer(t *testing.T) {
	base := SimpleScorer{}
	n := NormalizedScorer{Base: base, Half: 2}
	if got := n.Score([]int{0}); got != 0 {
		t.Errorf("zero stays zero: %f", got)
	}
	if got := n.Score([]int{2}); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half-point = %f, want 0.5", got)
	}
	if got := n.Score([]int{1000000}); got >= 1 {
		t.Errorf("normalized score must stay below 1: %f", got)
	}
	// Default half.
	d := NormalizedScorer{Base: base}
	if got := d.Score([]int{1}); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("default half = %f", got)
	}
}

func TestNormalizedScorerMonotone(t *testing.T) {
	n := NormalizedScorer{Base: SimpleScorer{}, Half: 3}
	f := func(a, b uint8) bool {
		x, y := int(a), int(b)
		sx, sy := n.Score([]int{x}), n.Score([]int{y})
		if x < y && sx >= sy {
			return false
		}
		if x == y && sx != sy {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

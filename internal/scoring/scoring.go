// Package scoring implements the scoring functions of the paper: the user-
// defined functions of Fig. 9 (ScoreFoo, ScoreSim, ScoreBar, PickFoo) used
// by the TIX algebra examples, and the two scoring functions of the
// experimental evaluation (Sec. 6.1) used by the TermJoin family — the
// simple weighted-sum function and the complex function that rewards term
// proximity and scales by the fraction of relevant children. A tf·idf
// scorer is provided as the "more representative of what an IR system would
// do" option the paper mentions.
package scoring

import (
	"math"
	"sort"

	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// Occ is one term occurrence inside the subtree of the node being scored,
// as accumulated by TermJoin's per-stack-entry buffer (the "BufferAndList"
// of Fig. 11). Term is the query-term index, Pos the absolute word position
// and Node the ordinal of the containing text node.
type Occ struct {
	Term int
	Pos  uint32
	Node int32
}

// SimpleScorer is the simple scoring function of Sec. 6.1: "a weighted sum
// of the occurrences of each term under a given ancestor."
type SimpleScorer struct {
	// Weights holds one weight per query term; a nil entry set defaults
	// every term to weight 1.
	Weights []float64
}

// weight returns the weight of term i.
func (s SimpleScorer) weight(i int) float64 {
	if i < len(s.Weights) {
		return s.Weights[i]
	}
	return 1
}

// Score computes the weighted sum over per-term occurrence counts.
func (s SimpleScorer) Score(counts []int) float64 {
	total := 0.0
	for i, c := range counts {
		total += s.weight(i) * float64(c)
	}
	return total
}

// ComplexScorer is the complex scoring function of Sec. 6.1: it "examines
// the term distribution among child nodes", assigning higher scores when
// distances between terms are smaller, and multiplies by the ratio of
// non-zero-scored children to total children.
type ComplexScorer struct {
	// Weights as in SimpleScorer.
	Weights []float64
	// NodeDistance is the distance charged per node-to-node hop when two
	// occurrences are in different text nodes (the paper: "multiples of
	// node-to-node distance"). Defaults to 16 when zero.
	NodeDistance float64
}

func (s ComplexScorer) weight(i int) float64 {
	if i < len(s.Weights) {
		return s.Weights[i]
	}
	return 1
}

func (s ComplexScorer) nodeDistance() float64 {
	if s.NodeDistance == 0 {
		return 16
	}
	return s.NodeDistance
}

// Score combines the weighted term sum with a proximity bonus over the
// occurrence buffer and the relevant-children ratio. occ must be sorted by
// Pos (TermJoin's buffers naturally are; Score sorts defensively when not).
// totalChildren == 0 (a leaf) leaves the ratio at 1.
func (s ComplexScorer) Score(counts []int, occ []Occ, nonZeroChildren, totalChildren int) float64 {
	base := 0.0
	for i, c := range counts {
		base += s.weight(i) * float64(c)
	}
	if base == 0 {
		return 0
	}
	if !sort.SliceIsSorted(occ, func(i, j int) bool { return occ[i].Pos < occ[j].Pos }) {
		occ = append([]Occ(nil), occ...)
		sort.Slice(occ, func(i, j int) bool { return occ[i].Pos < occ[j].Pos })
	}
	prox := 0.0
	for i := 1; i < len(occ); i++ {
		a, b := occ[i-1], occ[i]
		if a.Term == b.Term {
			continue
		}
		var dist float64
		if a.Node == b.Node {
			dist = float64(b.Pos - a.Pos)
		} else {
			hops := b.Node - a.Node
			if hops < 0 {
				hops = -hops
			}
			dist = s.nodeDistance() * float64(hops)
		}
		prox += 1 / (1 + dist)
	}
	ratio := 1.0
	if totalChildren > 0 {
		ratio = float64(nonZeroChildren) / float64(totalChildren)
	}
	return (base + prox) * ratio
}

// TFIDFScorer scores by sum over terms of tf × idf, the measure the paper
// names as the realistic choice for score generation (Sec. 5.1).
type TFIDFScorer struct {
	// IDF holds the inverse document frequency per query term.
	IDF []float64
}

// Score computes Σ tf_i × idf_i over per-term counts.
func (s TFIDFScorer) Score(counts []int) float64 {
	total := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		idf := 1.0
		if i < len(s.IDF) {
			idf = s.IDF[i]
		}
		total += (1 + math.Log(float64(c))) * idf
	}
	return total
}

// ---------------------------------------------------------------------------
// The user-defined functions of Fig. 9, operating on xmltree nodes. These
// are the algebra-level (logical) counterparts used by the worked examples
// of Sec. 3 and the XQuery extension of Sec. 4.

// ScoreFoo implements Fig. 9's ScoreFoo: each phrase in primary contributes
// 0.8 per occurrence in the node's alltext(), each phrase in secondary 0.6.
// Multi-word phrases are matched as adjacent-word phrases.
func ScoreFoo(tok *tokenize.Tokenizer, n *xmltree.Node, primary, secondary []string) float64 {
	text := n.AllText()
	score := 0.0
	for _, a := range primary {
		score += 0.8 * float64(countPhrase(tok, text, a))
	}
	for _, b := range secondary {
		score += 0.6 * float64(countPhrase(tok, text, b))
	}
	return score
}

func countPhrase(tok *tokenize.Tokenizer, text, phrase string) int {
	terms := tok.SplitPhrase(phrase)
	switch len(terms) {
	case 0:
		return 0
	case 1:
		return tok.Count(text, terms[0])
	default:
		return tok.CountPhrase(text, terms)
	}
}

// ScoreSim implements Fig. 9's ScoreSim: the number of distinct words that
// occur in the direct text of both nodes (count-same of $a/text() and
// $b/text()). Only immediate text children are compared, per the XQuery
// text() step.
func ScoreSim(tok *tokenize.Tokenizer, a, b *xmltree.Node) float64 {
	return float64(countSame(tok, directText(a), directText(b)))
}

func directText(n *xmltree.Node) string {
	out := ""
	for _, c := range n.Children {
		if c.Kind == xmltree.Text {
			if out != "" {
				out += " "
			}
			out += c.Text
		}
	}
	return out
}

func countSame(tok *tokenize.Tokenizer, a, b string) int {
	set := map[string]bool{}
	for _, t := range tok.Terms(a) {
		set[t] = true
	}
	seen := map[string]bool{}
	n := 0
	for _, t := range tok.Terms(b) {
		if set[t] && !seen[t] {
			seen[t] = true
			n++
		}
	}
	return n
}

// ScoreBar implements Fig. 9's ScoreBar: score1+score2 if score2 > 0, else 0.
func ScoreBar(score1, score2 float64) float64 {
	if score2 > 0 {
		return score1 + score2
	}
	return 0
}

// PickFoo implements Fig. 9's PickFoo worth-determination: a node is worth
// returning when more than half of its children have score above the
// relevance threshold (0.8 in the paper's example). The parent-not-picked
// condition is enforced by the Pick algorithm itself (internal/exec), which
// consults DetWorth-style callbacks; PickFoo is the DetWorth instance.
func PickFoo(n *xmltree.Node, score func(*xmltree.Node) float64, threshold float64) bool {
	if len(n.Children) == 0 {
		return score(n) >= threshold
	}
	relevant := 0
	for _, c := range n.Children {
		if score(c) >= threshold {
			relevant++
		}
	}
	return float64(relevant)/float64(len(n.Children)) > 0.5
}

// SameParity is the IsSameClass instance from Sec. 5.3's example: two nodes
// are in the same return class when their levels have equal parity.
func SameParity(a, b *xmltree.Node) bool {
	return a.Level%2 == b.Level%2
}

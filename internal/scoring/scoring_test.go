package scoring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

func TestSimpleScorer(t *testing.T) {
	s := SimpleScorer{Weights: []float64{0.8, 0.6}}
	if got := s.Score([]int{2, 3}); math.Abs(got-(0.8*2+0.6*3)) > 1e-9 {
		t.Errorf("Score = %f", got)
	}
	if got := s.Score([]int{0, 0}); got != 0 {
		t.Errorf("zero counts should score 0, got %f", got)
	}
	// Missing weights default to 1.
	s2 := SimpleScorer{}
	if got := s2.Score([]int{1, 2}); got != 3 {
		t.Errorf("default weights: %f", got)
	}
}

func TestComplexScorerZeroBase(t *testing.T) {
	s := ComplexScorer{}
	if got := s.Score([]int{0, 0}, nil, 0, 4); got != 0 {
		t.Errorf("zero counts must score 0, got %f", got)
	}
}

func TestComplexScorerProximity(t *testing.T) {
	s := ComplexScorer{Weights: []float64{1, 1}}
	// Same counts; adjacent occurrences must beat distant ones.
	near := []Occ{{Term: 0, Pos: 10, Node: 1}, {Term: 1, Pos: 11, Node: 1}}
	far := []Occ{{Term: 0, Pos: 10, Node: 1}, {Term: 1, Pos: 90, Node: 1}}
	sNear := s.Score([]int{1, 1}, near, 1, 1)
	sFar := s.Score([]int{1, 1}, far, 1, 1)
	if sNear <= sFar {
		t.Errorf("proximity should raise score: near %f, far %f", sNear, sFar)
	}
	// Cross-node occurrences are charged node distance.
	cross := []Occ{{Term: 0, Pos: 10, Node: 1}, {Term: 1, Pos: 11, Node: 5}}
	if got := s.Score([]int{1, 1}, cross, 1, 1); got >= sNear {
		t.Errorf("cross-node should not beat same-node adjacency: %f vs %f", got, sNear)
	}
	// Same-term neighbours contribute no proximity.
	sameTerm := []Occ{{Term: 0, Pos: 10, Node: 1}, {Term: 0, Pos: 11, Node: 1}}
	if got := s.Score([]int{2, 0}, sameTerm, 1, 1); got != 2 {
		t.Errorf("same-term pair should add no bonus: %f", got)
	}
}

func TestComplexScorerChildRatio(t *testing.T) {
	s := ComplexScorer{}
	occ := []Occ{{Term: 0, Pos: 5, Node: 1}}
	full := s.Score([]int{1}, occ, 4, 4)
	half := s.Score([]int{1}, occ, 2, 4)
	leaf := s.Score([]int{1}, occ, 0, 0)
	if math.Abs(half-full/2) > 1e-9 {
		t.Errorf("half ratio: %f vs full %f", half, full)
	}
	if math.Abs(leaf-full) > 1e-9 {
		t.Errorf("leaf should use ratio 1: %f vs %f", leaf, full)
	}
}

func TestComplexScorerUnsortedOccs(t *testing.T) {
	s := ComplexScorer{}
	sorted := []Occ{{Term: 0, Pos: 1, Node: 1}, {Term: 1, Pos: 2, Node: 1}}
	unsorted := []Occ{{Term: 1, Pos: 2, Node: 1}, {Term: 0, Pos: 1, Node: 1}}
	if a, b := s.Score([]int{1, 1}, sorted, 1, 1), s.Score([]int{1, 1}, unsorted, 1, 1); a != b {
		t.Errorf("order sensitivity: %f vs %f", a, b)
	}
	// The defensive sort must not mutate the caller's slice.
	if unsorted[0].Pos != 2 {
		t.Errorf("caller slice mutated")
	}
}

func TestTFIDF(t *testing.T) {
	s := TFIDFScorer{IDF: []float64{2, 0.5}}
	rare := s.Score([]int{3, 0})
	common := s.Score([]int{0, 3})
	if rare <= common {
		t.Errorf("rare term should dominate: %f vs %f", rare, common)
	}
	if got := s.Score([]int{0, 0}); got != 0 {
		t.Errorf("zero = %f", got)
	}
	// tf growth is sublinear (1 + log tf).
	if s.Score([]int{10, 0}) >= 10*s.Score([]int{1, 0}) {
		t.Errorf("tf should be sublinear")
	}
}

func TestScoreFooPaperExample(t *testing.T) {
	// Paragraph #a18 of Fig. 1: one occurrence of "search engines" — the
	// singular phrase "search engine" does not occur, but ScoreFoo with the
	// paper's plural-insensitive reading scores on phrase matches; the
	// paper's own numbers (Fig. 5) treat "search engines:" in #a18 as an
	// occurrence. Use the exact token sequences to verify the arithmetic.
	tok := tokenize.New()
	p := mustParse(`<p>Here are some IR based search engine examples</p>`)
	got := ScoreFoo(tok, p, []string{"search engine"}, []string{"internet", "information retrieval"})
	if math.Abs(got-0.8) > 1e-9 {
		t.Errorf("ScoreFoo = %f, want 0.8", got)
	}
	p2 := mustParse(`<p>search engine uses a new information retrieval technology on the internet</p>`)
	got2 := ScoreFoo(tok, p2, []string{"search engine"}, []string{"internet", "information retrieval"})
	if math.Abs(got2-(0.8+0.6+0.6)) > 1e-9 {
		t.Errorf("ScoreFoo = %f, want 2.0", got2)
	}
	// Subtree aggregation: alltext() spans descendants.
	parent := mustParse(`<sec><p>search engine</p><p>search engine again</p></sec>`)
	got3 := ScoreFoo(tok, parent, []string{"search engine"}, nil)
	if math.Abs(got3-1.6) > 1e-9 {
		t.Errorf("ScoreFoo(subtree) = %f, want 1.6", got3)
	}
}

func TestScoreSim(t *testing.T) {
	tok := tokenize.New()
	a := mustParse(`<title>Internet Technologies</title>`)
	b := mustParse(`<title>Internet Technologies</title>`)
	c := mustParse(`<title>WWW Technologies</title>`)
	d := mustParse(`<title>Databases</title>`)
	if got := ScoreSim(tok, a, b); got != 2 {
		t.Errorf("identical titles = %f, want 2", got)
	}
	if got := ScoreSim(tok, a, c); got != 1 {
		t.Errorf("one shared word = %f, want 1", got)
	}
	if got := ScoreSim(tok, a, d); got != 0 {
		t.Errorf("disjoint = %f, want 0", got)
	}
	// Repeated shared words count once (distinct words).
	e := mustParse(`<t>web web web</t>`)
	f := mustParse(`<t>web web</t>`)
	if got := ScoreSim(tok, e, f); got != 1 {
		t.Errorf("repeat = %f, want 1", got)
	}
	// Only direct text counts, not descendants.
	g := mustParse(`<t><sub>internet</sub></t>`)
	if got := ScoreSim(tok, a, g); got != 0 {
		t.Errorf("descendant text must not count: %f", got)
	}
}

func TestScoreBar(t *testing.T) {
	if got := ScoreBar(2, 0.8); got != 2.8 {
		t.Errorf("ScoreBar(2,0.8) = %f", got)
	}
	if got := ScoreBar(2, 0); got != 0 {
		t.Errorf("ScoreBar(2,0) = %f, want 0", got)
	}
	if got := ScoreBar(2, -1); got != 0 {
		t.Errorf("ScoreBar(2,-1) = %f, want 0", got)
	}
}

func TestPickFoo(t *testing.T) {
	// Build a node with 3 children, scores 1.0, 1.0, 0.1: 2/3 > 50% → worth.
	n := xmltree.NewElement("sec")
	c1, c2, c3 := xmltree.NewElement("p"), xmltree.NewElement("p"), xmltree.NewElement("p")
	n.AppendChild(c1)
	n.AppendChild(c2)
	n.AppendChild(c3)
	xmltree.Number(n)
	scores := map[*xmltree.Node]float64{c1: 1.0, c2: 1.0, c3: 0.1}
	score := func(m *xmltree.Node) float64 { return scores[m] }
	if !PickFoo(n, score, 0.8) {
		t.Errorf("2/3 relevant children should be worth returning")
	}
	scores[c2] = 0.1
	if PickFoo(n, score, 0.8) {
		t.Errorf("1/3 relevant children should not be worth returning")
	}
	// Leaf falls back to its own score.
	leaf := xmltree.NewElement("p")
	xmltree.Number(leaf)
	if !PickFoo(leaf, func(*xmltree.Node) float64 { return 0.9 }, 0.8) {
		t.Errorf("relevant leaf should be worth returning")
	}
}

func TestSameParity(t *testing.T) {
	root := mustParse(`<a><b><c/></b></a>`)
	b := root.FirstTag("b")
	c := root.FirstTag("c")
	if SameParity(root, b) {
		t.Errorf("levels 0 and 1 differ in parity")
	}
	if !SameParity(root, c) {
		t.Errorf("levels 0 and 2 share parity")
	}
}

func TestQuickSimpleScorerLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() * 2
		}
		s := SimpleScorer{Weights: w}
		a := make([]int, n)
		b := make([]int, n)
		sum := make([]int, n)
		for i := range a {
			a[i], b[i] = rng.Intn(10), rng.Intn(10)
			sum[i] = a[i] + b[i]
		}
		return math.Abs(s.Score(sum)-(s.Score(a)+s.Score(b))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComplexScoreNonNegativeAndMonotoneRatio(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := ComplexScorer{}
		n := 1 + rng.Intn(3)
		counts := make([]int, n)
		var occ []Occ
		pos := uint32(0)
		for i := range counts {
			counts[i] = rng.Intn(4)
			for j := 0; j < counts[i]; j++ {
				pos += uint32(1 + rng.Intn(20))
				occ = append(occ, Occ{Term: i, Pos: pos, Node: int32(rng.Intn(4))})
			}
		}
		total := 1 + rng.Intn(6)
		lo := rng.Intn(total + 1)
		hi := lo + rng.Intn(total-lo+1)
		sLo := s.Score(counts, occ, lo, total)
		sHi := s.Score(counts, occ, hi, total)
		return sLo >= 0 && sHi >= sLo-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

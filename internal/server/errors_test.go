package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/storage"
)

// decodeError asserts that resp carries the documented JSON error schema
// and returns the decoded body.
func decodeError(t *testing.T, resp *http.Response, wantStatus int, wantCode string) ErrorResponse {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Errorf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if e.Code != wantCode {
		t.Errorf("code = %q, want %q", e.Code, wantCode)
	}
	if e.Status != wantStatus {
		t.Errorf("body status = %d, want %d", e.Status, wantStatus)
	}
	if e.Error == "" {
		t.Error("empty error message")
	}
	// Transient statuses are marked retryable and carry a Retry-After
	// hint; deterministic errors must advertise neither.
	wantRetryable := wantStatus == http.StatusRequestTimeout ||
		wantStatus == http.StatusTooManyRequests ||
		wantStatus == http.StatusServiceUnavailable
	if e.Retryable != wantRetryable {
		t.Errorf("retryable = %v for status %d, want %v", e.Retryable, wantStatus, wantRetryable)
	}
	ra := resp.Header.Get("Retry-After")
	if wantRetryable && ra == "" {
		t.Errorf("status %d missing Retry-After header", wantStatus)
	}
	if !wantRetryable && ra != "" {
		t.Errorf("status %d carries unexpected Retry-After %q", wantStatus, ra)
	}
	if ra != "" {
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Errorf("Retry-After = %q, want integer seconds ≥ 1", ra)
		}
	}
	return e
}

func TestQueryTimeoutReturns408(t *testing.T) {
	s, ts, reg := newIsolatedServer(t)
	s.QueryTimeout = time.Nanosecond
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"query":"For $a := document(\"articles.xml\")//section Sortby(score)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decodeError(t, resp, http.StatusRequestTimeout, "timeout")
	if got := reg.Counter(`tix_query_timeouts_total{op="query"}`).Value(); got != 1 {
		t.Errorf("tix_query_timeouts_total = %d, want 1", got)
	}
}

func TestTermsTimeoutReturns408(t *testing.T) {
	s, ts, _ := newIsolatedServer(t)
	s.QueryTimeout = time.Nanosecond
	resp, err := http.Post(ts.URL+"/terms", "application/json",
		strings.NewReader(`{"terms":["search","engine"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decodeError(t, resp, http.StatusRequestTimeout, "timeout")
}

func TestAccessLimitReturns422(t *testing.T) {
	s, ts, reg := newIsolatedServer(t)
	s.DB.(*db.DB).SetLimits(exec.Limits{MaxAccesses: 5, CheckEvery: 1})
	resp, err := http.Post(ts.URL+"/terms", "application/json",
		strings.NewReader(`{"terms":["search","engine"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	e := decodeError(t, resp, http.StatusUnprocessableEntity, "limit_exceeded")
	if !strings.Contains(e.Error, "store accesses") {
		t.Errorf("error %q does not name the exhausted resource", e.Error)
	}
	if got := reg.Counter(`tix_query_limit_exceeded_total{op="terms"}`).Value(); got != 1 {
		t.Errorf("tix_query_limit_exceeded_total = %d, want 1", got)
	}
}

func TestInjectedFaultReturns503(t *testing.T) {
	s, ts, reg := newIsolatedServer(t)
	s.DB.Stats() // build the index before arming faults
	s.DB.(*db.DB).Store().SetFaults(&storage.FaultInjector{FailEvery: 1})
	resp, err := http.Post(ts.URL+"/terms", "application/json",
		strings.NewReader(`{"terms":["search","engine"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decodeError(t, resp, http.StatusServiceUnavailable, "unavailable")
	if got := reg.Counter(`tix_query_faults_total{op="terms"}`).Value(); got != 1 {
		t.Errorf("tix_query_faults_total = %d, want 1", got)
	}

	// The server keeps serving after the fault: disarm and retry.
	s.DB.(*db.DB).Store().SetFaults(nil)
	resp2, err := http.Post(ts.URL+"/terms", "application/json",
		strings.NewReader(`{"terms":["search"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("after disarm: status = %d", resp2.StatusCode)
	}
}

func TestBadRequestSchema(t *testing.T) {
	_, ts, _ := newIsolatedServer(t)
	resp, err := http.Post(ts.URL+"/terms", "application/json", strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decodeError(t, resp, http.StatusBadRequest, "bad_request")
}

func TestRateLimitReturns429(t *testing.T) {
	s, ts, reg := newIsolatedServer(t)
	s.Admission = fleet.NewAdmission(fleet.AdmissionConfig{
		RatePerSec: 0.001, Burst: 2, Metrics: reg,
	})
	// The burst admits two requests; the third gets a typed 429.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decodeError(t, resp, http.StatusTooManyRequests, "rate_limited")
	// Probes and metrics stay exempt even while the client is limited.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		r2, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Errorf("%s sheddable under rate limiting: status %d", path, r2.StatusCode)
		}
	}
}

func TestOverloadReturns503(t *testing.T) {
	s, ts, reg := newIsolatedServer(t)
	s.Admission = fleet.NewAdmission(fleet.AdmissionConfig{
		MaxInflight: 1, MaxQueue: 1, Metrics: reg,
	})
	// Occupy the only slot from inside a handler via a slow query: use the
	// admission controller directly (the handler path is exercised above).
	release, err := s.Admission.Admit(context.Background(), "holder")
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue…
	queued := make(chan struct{})
	go func() {
		r, err := s.Admission.Admit(context.Background(), "q")
		if err == nil {
			r()
		}
		close(queued)
	}()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if reg.Gauge("tix_admission_queued").Value() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// …so the next HTTP request is shed with a typed 503.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	e := decodeError(t, resp, http.StatusServiceUnavailable, "overloaded")
	if !e.Retryable {
		t.Error("overload rejection not marked retryable")
	}
	release()
	<-queued
}

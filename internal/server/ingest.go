package server

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/db"
)

// Ingestor is the optional mutation surface of a Backend. Both *db.DB and
// the sharded *shard.DB satisfy it; a backend without it (or a server with
// ingestion disabled) answers the document endpoints with 501.
//
//	POST   /docs          {"name": "...", "xml": "..."}  add a document
//	PUT    /docs/{name}   {"xml": "..."}                 replace a document
//	DELETE /docs/{name}                                  delete a document
//
// Successful mutations return the backend's new mutation generation, a
// cheap staleness token clients can compare across requests. Error codes:
// conflict (409) for adding an existing name, not_found (404) for
// updating or deleting an unknown one, unprocessable (422) for XML that
// does not parse, not_implemented (501) when ingestion is unavailable.
type Ingestor interface {
	Add(name, src string) error
	Update(name, src string) error
	Delete(name string) error
	Generation() uint64
}

// ingestor returns the mutation surface, or nil when the backend does not
// support ingestion or the server has it disabled.
func (s *Server) ingestor() Ingestor {
	if !s.EnableIngest {
		return nil
	}
	ing, _ := s.DB.(Ingestor)
	return ing
}

// ingestStatus maps a mutation error to its HTTP status.
func ingestStatus(err error) int {
	switch {
	case errors.Is(err, db.ErrDocumentExists):
		return http.StatusConflict
	case errors.Is(err, db.ErrDocumentNotFound):
		return http.StatusNotFound
	}
	return http.StatusUnprocessableEntity
}

// IngestRequest is the POST /docs (and, without Name, PUT /docs/{name})
// payload.
type IngestRequest struct {
	Name string `json:"name,omitempty"`
	XML  string `json:"xml"`
}

// IngestResponse acknowledges one mutation.
type IngestResponse struct {
	Name       string `json:"name"`
	Documents  int    `json:"documents"`
	Generation uint64 `json:"generation"`
}

// requireIngestor resolves the mutation surface or answers 501.
func (s *Server) requireIngestor(w http.ResponseWriter) Ingestor {
	ing := s.ingestor()
	if ing == nil {
		errorJSON(w, http.StatusNotImplemented, fmt.Errorf("ingestion is not enabled on this server"))
	}
	return ing
}

// ackIngest writes the post-mutation acknowledgement.
func (s *Server) ackIngest(w http.ResponseWriter, ing Ingestor, name string) {
	writeJSON(w, IngestResponse{
		Name:       name,
		Documents:  s.DB.DocumentCount(),
		Generation: ing.Generation(),
	})
}

func (s *Server) handleAddDoc(w http.ResponseWriter, r *http.Request) {
	ing := s.requireIngestor(w)
	if ing == nil {
		return
	}
	var req IngestRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" || req.XML == "" {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("both name and xml are required"))
		return
	}
	if err := ing.Add(req.Name, req.XML); err != nil {
		errorJSON(w, ingestStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	s.ackIngest(w, ing, req.Name)
}

func (s *Server) handleUpdateDoc(w http.ResponseWriter, r *http.Request) {
	ing := s.requireIngestor(w)
	if ing == nil {
		return
	}
	name := r.PathValue("name")
	var req IngestRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if name == "" || req.XML == "" {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("document name and xml are required"))
		return
	}
	if req.Name != "" && req.Name != name {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("body name %q does not match path %q", req.Name, name))
		return
	}
	if err := ing.Update(name, req.XML); err != nil {
		errorJSON(w, ingestStatus(err), err)
		return
	}
	s.ackIngest(w, ing, name)
}

func (s *Server) handleDeleteDoc(w http.ResponseWriter, r *http.Request) {
	ing := s.requireIngestor(w)
	if ing == nil {
		return
	}
	name := r.PathValue("name")
	if name == "" {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("document name is required"))
		return
	}
	if err := ing.Delete(name); err != nil {
		errorJSON(w, ingestStatus(err), err)
		return
	}
	s.ackIngest(w, ing, name)
}

package server

// Ingestion-under-fault drills: document mutations race injected storage
// faults and client disconnects, and the suite asserts the index never
// ends up in a partial state — every acknowledged mutation is fully
// queryable, every failed one leaves no trace, and the mutation
// generation moves only on acknowledged changes.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/storage"
)

// ingestServer is newIsolatedServer with mutations enabled.
func ingestServer(t *testing.T) (*Server, string, *db.DB) {
	t.Helper()
	s, ts, _ := newIsolatedServer(t)
	s.EnableIngest = true
	d := s.DB.(*db.DB)
	d.Stats() // build the index before any fault arming
	return s, ts.URL, d
}

// postDoc adds one document and returns the response.
func postDoc(t *testing.T, url, name, xml string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(IngestRequest{Name: name, XML: xml})
	resp, err := http.Post(url+"/docs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// countTermHits queries /terms for one term and returns the result count.
func countTermHits(t *testing.T, url, term string) int {
	t.Helper()
	resp, err := http.Post(url+"/terms", "application/json",
		strings.NewReader(fmt.Sprintf(`{"terms":[%q]}`, term)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/terms %s: status %d", term, resp.StatusCode)
	}
	var out struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Count
}

// TestIngestConsistentAcrossQueryFaults runs mutations while every query
// path access is faulting: acknowledged mutations must be fully visible
// once the fault lifts, with the generation having moved once per ack.
func TestIngestConsistentAcrossQueryFaults(t *testing.T) {
	_, url, d := ingestServer(t)
	genBefore := d.Generation()

	// Arm the injector: queries fail, mutations (which bypass the metered
	// read path) must keep working and stay atomic.
	d.Store().SetFaults(&storage.FaultInjector{FailEvery: 1})

	const docs = 8
	var wg sync.WaitGroup
	acks := make([]bool, docs)
	for i := 0; i < docs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A single element, so the shared term scores exactly one
			// component per document.
			xml := fmt.Sprintf("<note>chaosterm%d shared zanzibar</note>", i)
			resp := postDoc(t, url, fmt.Sprintf("chaos-%d.xml", i), xml)
			defer resp.Body.Close()
			acks[i] = resp.StatusCode == http.StatusCreated
		}(i)
	}
	// Query traffic racing the mutations: errors are expected (faults are
	// armed); the point is that it must not corrupt concurrent ingestion.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(url+"/terms", "application/json",
				strings.NewReader(`{"terms":["search"]}`))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	d.Store().SetFaults(nil)

	acked := 0
	for i, ok := range acks {
		if !ok {
			t.Errorf("add chaos-%d.xml not acknowledged", i)
			continue
		}
		acked++
		// Each acknowledged document is individually and fully queryable.
		if got := countTermHits(t, url, fmt.Sprintf("chaosterm%d", i)); got == 0 {
			t.Errorf("acked document chaos-%d.xml not queryable after fault lift", i)
		}
	}
	// The shared term sees every acked document exactly once — no partial
	// or duplicated postings.
	if got := countTermHits(t, url, "zanzibar"); got != acked {
		t.Errorf("shared term hits = %d, want %d (one per acked doc)", got, acked)
	}
	if gen := d.Generation(); gen != genBefore+uint64(acked) {
		t.Errorf("generation = %d, want %d + %d acks", gen, genBefore, acked)
	}
}

// TestIngestClientDisconnectMidBody simulates a client dying halfway
// through streaming the request body: the decode fails and the index
// must be untouched — same generation, no phantom document.
func TestIngestClientDisconnectMidBody(t *testing.T) {
	_, url, d := ingestServer(t)
	genBefore := d.Generation()
	docsBefore := d.DocumentCount()

	pr, pw := io.Pipe()
	go func() {
		// Half a JSON body, then the connection "drops".
		pw.Write([]byte(`{"name":"phantom.xml","xml":"<note>orphanterm`)) //nolint:errcheck
		pw.CloseWithError(io.ErrUnexpectedEOF)
	}()
	resp, err := http.Post(url+"/docs", "application/json", pr)
	if err == nil {
		// Depending on timing the server may answer 400 before noticing the
		// broken body; either way it must be an error, not a 201.
		if resp.StatusCode == http.StatusCreated {
			t.Fatal("truncated request acknowledged as created")
		}
		resp.Body.Close()
	}

	if gen := d.Generation(); gen != genBefore {
		t.Errorf("generation moved on a failed request: %d → %d", genBefore, gen)
	}
	if got := d.DocumentCount(); got != docsBefore {
		t.Errorf("document count moved on a failed request: %d → %d", docsBefore, got)
	}
	if got := countTermHits(t, url, "orphanterm"); got != 0 {
		t.Errorf("partial document content queryable: %d hits", got)
	}
}

// cancellingBody is a request body that models a client giving up
// mid-stream: the first Read yields a partial JSON chunk and cancels the
// request context; every later Read blocks until the cancellation lands
// and then reports it. The abort must flow through the body itself —
// the transport cannot interrupt an in-flight Body.Read, so a body that
// ignores cancellation (e.g. an io.Pipe left open) deadlocks Do: on
// cancel the transport waits for its write loop, which waits on Read.
type cancellingBody struct {
	ctx    context.Context
	cancel context.CancelFunc
	chunk  []byte
	sent   bool
}

func (b *cancellingBody) Read(p []byte) (int, error) {
	if !b.sent {
		b.sent = true
		n := copy(p, b.chunk)
		b.cancel() // client gives up mid-body
		return n, nil
	}
	<-b.ctx.Done()
	return 0, b.ctx.Err()
}

// TestIngestClientCancellationMidRequest aborts the request via context
// cancellation while the body is still streaming; the server must treat
// it exactly like a disconnect — no partial index state.
func TestIngestClientCancellationMidRequest(t *testing.T) {
	_, url, d := ingestServer(t)
	genBefore := d.Generation()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := &cancellingBody{ctx: ctx, cancel: cancel,
		chunk: []byte(`{"name":"ghost.xml","xml":"<note>ghostterm`)}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/docs", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		if resp.StatusCode == http.StatusCreated {
			t.Fatal("cancelled request acknowledged as created")
		}
		resp.Body.Close()
	}

	if gen := d.Generation(); gen != genBefore {
		t.Errorf("generation moved on a cancelled request: %d → %d", genBefore, gen)
	}
	if got := countTermHits(t, url, "ghostterm"); got != 0 {
		t.Errorf("cancelled request left queryable content: %d hits", got)
	}
}

// TestUpdateDeleteUnderFaults drives the full mutation lifecycle while
// faults come and go: updates replace content atomically (old content
// vanishes exactly when new appears) and deletes leave no residue.
func TestUpdateDeleteUnderFaults(t *testing.T) {
	_, url, d := ingestServer(t)

	resp := postDoc(t, url, "life.xml", "<note>firstphase</note>")
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add: status %d", resp.StatusCode)
	}
	if got := countTermHits(t, url, "firstphase"); got != 1 {
		t.Fatalf("added doc hits = %d, want 1", got)
	}

	// Update while queries are faulting.
	d.Store().SetFaults(&storage.FaultInjector{FailEvery: 1})
	body, _ := json.Marshal(IngestRequest{XML: "<note>secondphase</note>"})
	req, err := http.NewRequest(http.MethodPut, url+"/docs/life.xml", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("update under faults: status %d", putResp.StatusCode)
	}
	d.Store().SetFaults(nil)

	// The replacement is atomic: old term gone, new term present.
	if got := countTermHits(t, url, "firstphase"); got != 0 {
		t.Errorf("old content still queryable after update: %d hits", got)
	}
	if got := countTermHits(t, url, "secondphase"); got != 1 {
		t.Errorf("new content hits = %d, want 1", got)
	}

	// Delete, again with faults armed mid-lifecycle.
	d.Store().SetFaults(&storage.FaultInjector{FailEvery: 1, Seed: 3})
	delReq, err := http.NewRequest(http.MethodDelete, url+"/docs/life.xml", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete under faults: status %d", delResp.StatusCode)
	}
	d.Store().SetFaults(nil)

	if got := countTermHits(t, url, "secondphase"); got != 0 {
		t.Errorf("deleted content still queryable: %d hits", got)
	}
	// Wait out any background compaction so the drill ends quiescent.
	d.WaitCompaction()
	if got := d.CompactionBacklog(); got < 0 {
		t.Errorf("negative compaction backlog %d", got)
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/db"
	"repro/internal/metrics"
)

// The monolithic database must satisfy the optional mutation surface.
var _ Ingestor = (*db.DB)(nil)

// newIngestServer builds a mutable server over a small live corpus.
func newIngestServer(t *testing.T) (*httptest.Server, *db.DB) {
	t.Helper()
	d := db.New(db.Options{Metrics: metrics.NewRegistry()})
	if err := d.LoadString("seed.xml", `<d><t>seed text here</t></d>`); err != nil {
		t.Fatal(err)
	}
	d.Warm()
	s := New(d)
	s.EnableIngest = true
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, d
}

func doJSON(t *testing.T, method, url string, body interface{}) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]json.RawMessage
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func errCode(t *testing.T, out map[string]json.RawMessage) string {
	t.Helper()
	var code string
	if raw, ok := out["code"]; ok {
		_ = json.Unmarshal(raw, &code)
	}
	return code
}

func TestIngestAddQueryDelete(t *testing.T) {
	ts, d := newIngestServer(t)

	resp, out := doJSON(t, http.MethodPost, ts.URL+"/docs",
		IngestRequest{Name: "live.xml", XML: `<d><t>flamingo habitat</t></d>`})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add status = %d (%v)", resp.StatusCode, out)
	}
	var gen uint64
	_ = json.Unmarshal(out["generation"], &gen)
	if gen == 0 {
		t.Fatal("add acknowledged with generation 0")
	}

	// The document is immediately searchable.
	resp, out = doJSON(t, http.MethodPost, ts.URL+"/terms", map[string]interface{}{"terms": []string{"flamingo"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("terms status = %d", resp.StatusCode)
	}
	var count int
	_ = json.Unmarshal(out["count"], &count)
	if count == 0 {
		t.Fatal("added document not searchable")
	}

	// Update replaces the content.
	resp, _ = doJSON(t, http.MethodPut, ts.URL+"/docs/live.xml",
		IngestRequest{XML: `<d><t>pelican habitat</t></d>`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d", resp.StatusCode)
	}
	if res, err := d.TermSearch([]string{"flamingo"}, db.TermSearchOptions{}); err != nil || len(res) != 0 {
		t.Fatalf("stale content after update: %v, %v", res, err)
	}
	if res, err := d.TermSearch([]string{"pelican"}, db.TermSearchOptions{}); err != nil || len(res) == 0 {
		t.Fatalf("updated content missing: %v, %v", res, err)
	}

	// Delete retires it.
	resp, out = doJSON(t, http.MethodDelete, ts.URL+"/docs/live.xml", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d (%v)", resp.StatusCode, out)
	}
	var docs int
	_ = json.Unmarshal(out["documents"], &docs)
	if docs != 1 {
		t.Fatalf("documents after delete = %d, want 1", docs)
	}
	if res, err := d.TermSearch([]string{"pelican"}, db.TermSearchOptions{}); err != nil || len(res) != 0 {
		t.Fatalf("deleted content still searchable: %v, %v", res, err)
	}
}

func TestIngestErrorMapping(t *testing.T) {
	ts, _ := newIngestServer(t)

	// Conflict: the seed name is taken.
	resp, out := doJSON(t, http.MethodPost, ts.URL+"/docs",
		IngestRequest{Name: "seed.xml", XML: `<d/>`})
	if resp.StatusCode != http.StatusConflict || errCode(t, out) != "conflict" {
		t.Fatalf("duplicate add: status %d code %q", resp.StatusCode, errCode(t, out))
	}

	// Not found.
	resp, out = doJSON(t, http.MethodDelete, ts.URL+"/docs/nope.xml", nil)
	if resp.StatusCode != http.StatusNotFound || errCode(t, out) != "not_found" {
		t.Fatalf("missing delete: status %d code %q", resp.StatusCode, errCode(t, out))
	}
	resp, out = doJSON(t, http.MethodPut, ts.URL+"/docs/nope.xml", IngestRequest{XML: `<d/>`})
	if resp.StatusCode != http.StatusNotFound || errCode(t, out) != "not_found" {
		t.Fatalf("missing update: status %d code %q", resp.StatusCode, errCode(t, out))
	}

	// Unparsable XML.
	resp, out = doJSON(t, http.MethodPost, ts.URL+"/docs",
		IngestRequest{Name: "bad.xml", XML: `<d><unclosed`})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad xml: status %d code %q", resp.StatusCode, errCode(t, out))
	}

	// Missing fields.
	resp, out = doJSON(t, http.MethodPost, ts.URL+"/docs", IngestRequest{Name: "x.xml"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing xml: status %d code %q", resp.StatusCode, errCode(t, out))
	}

	// Path/body name mismatch.
	resp, out = doJSON(t, http.MethodPut, ts.URL+"/docs/a.xml", IngestRequest{Name: "b.xml", XML: `<d/>`})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("name mismatch: status %d code %q", resp.StatusCode, errCode(t, out))
	}
}

func TestIngestDisabledReturns501(t *testing.T) {
	d := db.New(db.Options{Metrics: metrics.NewRegistry()})
	s := New(d) // EnableIngest left false
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for _, c := range []struct{ method, url string }{
		{http.MethodPost, ts.URL + "/docs"},
		{http.MethodPut, ts.URL + "/docs/x.xml"},
		{http.MethodDelete, ts.URL + "/docs/x.xml"},
	} {
		resp, out := doJSON(t, c.method, c.url, IngestRequest{Name: "x.xml", XML: `<d/>`})
		if resp.StatusCode != http.StatusNotImplemented || errCode(t, out) != "not_implemented" {
			t.Fatalf("%s %s: status %d code %q, want 501 not_implemented",
				c.method, c.url, resp.StatusCode, errCode(t, out))
		}
	}
}

func TestIngestMetricsRecorded(t *testing.T) {
	ts, d := newIngestServer(t)
	for i := 0; i < 3; i++ {
		resp, _ := doJSON(t, http.MethodPost, ts.URL+"/docs",
			IngestRequest{Name: fmt.Sprintf("m%d.xml", i), XML: `<d><t>metric probe</t></d>`})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("add %d: status %d", i, resp.StatusCode)
		}
	}
	if got := d.MetricsRegistry().Counter(`tix_ingest_total{op="add"}`).Value(); got != 3 {
		t.Fatalf(`tix_ingest_total{op="add"} = %d, want 3`, got)
	}
	if gen := d.MetricsRegistry().Gauge("tix_index_generation").Value(); gen == 0 {
		t.Fatal("tix_index_generation gauge not published")
	}
}

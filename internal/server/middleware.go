package server

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/fleet"
)

// statusWriter captures the status code and body size a handler wrote, for
// the logging/metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// knownRoutes bounds the cardinality of the path label: anything else
// (404s, probe scans, pprof) aggregates under "other".
var knownRoutes = map[string]bool{
	"/stats":   true,
	"/query":   true,
	"/explain": true,
	"/terms":   true,
	"/phrase":  true,
	"/metrics": true,
	"/healthz": true,
	"/readyz":  true,
	"/docs":    true,
}

// admissionExempt lists the endpoints admission control never sheds:
// probes must answer while the tier is overloaded (that is their job),
// and /metrics is how operators see the overload.
var admissionExempt = map[string]bool{
	"/healthz": true,
	"/readyz":  true,
	"/metrics": true,
}

// withAdmission applies the admission controller ahead of the handler
// tree: requests that fail the per-client token bucket or the global
// concurrency gate are rejected with typed, retryable 429/503 errors
// before they touch the backend. No-op when no controller is configured.
func (s *Server) withAdmission(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Read per request (like QueryTimeout), so the controller can be
		// configured after the handler tree is built.
		a := s.Admission
		if a == nil || admissionExempt[r.URL.Path] {
			next.ServeHTTP(w, r)
			return
		}
		release, err := a.Admit(r.Context(), clientKey(r))
		if err != nil {
			status := http.StatusServiceUnavailable
			if errors.Is(err, fleet.ErrRateLimited) {
				status = http.StatusTooManyRequests
			}
			errorJSON(w, status, err)
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}

// clientKey identifies the requester for per-client rate limiting: the
// remote IP without the ephemeral port, so one client's connections share
// a bucket. (Deliberately not X-Forwarded-For: an unauthenticated header
// would let clients mint fresh buckets at will.)
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	// Document mutations carry the name in the path; collapse it so the
	// label stays bounded.
	if len(path) > len("/docs/") && path[:len("/docs/")] == "/docs/" {
		return "/docs/{name}"
	}
	return "other"
}

// withObservability wraps the handler tree with the request logging and
// HTTP metrics layer: every request records a latency histogram, a
// (method, path, status) counter, response bytes, and an in-flight gauge;
// when a Logger is configured, each request also emits one log line
// (method, path, status, duration, bytes, remote).
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reg := s.registry()
		inflight := reg.Gauge("tix_http_in_flight_requests")
		inflight.Add(1)
		defer inflight.Add(-1)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		func() {
			// Last line of defense: the db facade already recovers engine
			// panics, but a handler bug must not take the connection (and
			// its log/metrics record) down with it.
			defer func() {
				if rec := recover(); rec != nil {
					reg.Counter("tix_http_panics_total").Inc()
					if s.Logger != nil {
						s.Logger.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
					}
					if sw.status == 0 {
						errorJSON(sw, http.StatusInternalServerError, fmt.Errorf("internal server error"))
					}
				}
			}()
			next.ServeHTTP(sw, r)
		}()
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}

		path := routeLabel(r.URL.Path)
		lbl := `{method="` + r.Method + `",path="` + path + `"}`
		reg.Histogram("tix_http_request_seconds" + lbl).Observe(elapsed.Seconds())
		reg.Counter("tix_http_response_bytes_total" + lbl).Add(sw.bytes)
		reg.Counter(`tix_http_requests_total{method="` + r.Method + `",path="` + path +
			`",status="` + itoa(sw.status) + `"}`).Inc()

		if s.Logger != nil {
			s.Logger.Printf("%s %s %d %s %dB %s",
				r.Method, r.URL.Path, sw.status, elapsed.Round(time.Microsecond), sw.bytes, r.RemoteAddr)
		}
	})
}

// itoa formats a status code without pulling strconv into the hot path's
// allocation profile for the common codes.
func itoa(code int) string {
	switch code {
	case 200:
		return "200"
	case 201:
		return "201"
	case 400:
		return "400"
	case 404:
		return "404"
	case 405:
		return "405"
	case 408:
		return "408"
	case 409:
		return "409"
	case 413:
		return "413"
	case 429:
		return "429"
	case 422:
		return "422"
	case 500:
		return "500"
	case 501:
		return "501"
	case 503:
		return "503"
	}
	b := [3]byte{byte('0' + code/100%10), byte('0' + code/10%10), byte('0' + code%10)}
	return string(b[:])
}

package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/fixture"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/storage"
)

func getReadyz(t *testing.T, url string) (int, ReadyzResponse) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /readyz body: %v", err)
	}
	return resp.StatusCode, body
}

func TestReadyzSingleBackend(t *testing.T) {
	_, ts, _ := newIsolatedServer(t)
	status, body := getReadyz(t, ts.URL)
	if status != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", status)
	}
	if body.Status != "ready" {
		t.Errorf("status = %q, want ready", body.Status)
	}
	if body.HealthyReplicas != -1 {
		t.Errorf("healthyReplicas = %d for unreplicated backend, want -1", body.HealthyReplicas)
	}
}

// newFleetServer builds a server over a 2-replica fleet loaded with the
// fixture corpus, with fast breaker tunings for drills.
func newFleetServer(t *testing.T) (*Server, *fleet.Fleet, []*db.DB, string) {
	t.Helper()
	reg := metrics.NewRegistry()
	var replicas []*db.DB
	var backends []fleet.Backend
	for i := 0; i < 2; i++ {
		d := db.New(db.Options{Metrics: metrics.NewRegistry()})
		for _, doc := range []struct{ name, xml string }{
			{"articles.xml", fixture.ArticlesXML},
			{"reviews.xml", fixture.ReviewsXML},
		} {
			if err := d.LoadString(doc.name, doc.xml); err != nil {
				t.Fatal(err)
			}
		}
		d.Stats() // force the index so fault drills don't hit the build path
		replicas = append(replicas, d)
		backends = append(backends, d)
	}
	f, err := fleet.New(fleet.Config{
		HedgeAfter: -1,
		MaxRetries: 2,
		Metrics:    reg,
		Breaker: fleet.BreakerConfig{
			Window: 8, MinSamples: 2, FailureRatio: 0.5,
			OpenFor: 20 * time.Millisecond, HalfOpenProbes: 1,
		},
	}, backends...)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f)
	s.Metrics = reg
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, f, replicas, ts.URL
}

func TestReadyzFleetDegradesToUnavailable(t *testing.T) {
	_, f, replicas, url := newFleetServer(t)

	status, body := getReadyz(t, url)
	if status != http.StatusOK || body.HealthyReplicas != 2 {
		t.Fatalf("/readyz = %d healthy=%d, want 200 with 2", status, body.HealthyReplicas)
	}

	// Kill both replicas and drive traffic until every breaker opens.
	for _, d := range replicas {
		d.Store().SetFaults(&storage.FaultInjector{FailEvery: 1})
	}
	for i := 0; i < 30; i++ {
		f.TermSearchContext(context.Background(), []string{"search"}, db.TermSearchOptions{}) //nolint:errcheck — driving breakers open
		if f.HealthyReplicas() == 0 {
			break
		}
	}
	if f.HealthyReplicas() != 0 {
		t.Fatalf("breakers did not open: %d healthy", f.HealthyReplicas())
	}

	status, body = getReadyz(t, url)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with all breakers open = %d, want 503", status)
	}
	if body.Status != "unavailable" || body.Reason == "" {
		t.Errorf("body = %+v, want unavailable with reason", body)
	}
}

// backloggedBackend overrides the compaction backlog for threshold tests.
type backloggedBackend struct {
	Backend
	backlog int
}

func (b *backloggedBackend) CompactionBacklog() int { return b.backlog }

func TestReadyzCompactionBacklogThreshold(t *testing.T) {
	s, ts, _ := newIsolatedServer(t)
	bb := &backloggedBackend{Backend: s.DB, backlog: 100}
	s.DB = bb
	s.EnableIngest = true
	s.MaxCompactionBacklog = 8

	status, body := getReadyz(t, ts.URL)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz over backlog threshold = %d, want 503", status)
	}
	if body.CompactionBacklog != 100 {
		t.Errorf("compactionBacklog = %d, want 100", body.CompactionBacklog)
	}

	// Backlog drains below the threshold: ready again.
	bb.backlog = 3
	if status, _ = getReadyz(t, ts.URL); status != http.StatusOK {
		t.Fatalf("/readyz after drain = %d, want 200", status)
	}

	// Without ingestion the backlog gate is moot (nothing mutates).
	bb.backlog = 100
	s.EnableIngest = false
	if status, _ = getReadyz(t, ts.URL); status != http.StatusOK {
		t.Fatalf("/readyz read-only = %d, want 200", status)
	}
}

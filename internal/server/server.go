// Package server exposes a TIX database over HTTP with a small JSON API —
// the front end a downstream user would put in front of the engine:
//
//	GET  /stats                      database statistics
//	GET  /healthz                    liveness/readiness probe
//	GET  /metrics                    Prometheus-format metrics exposition
//	POST /query    {"query": "..."}  extended-XQuery evaluation
//	POST /terms    {"terms": [...], "topK": 10, "complex": false}
//	POST /phrase   {"phrase": [...]}
//
// With EnableIngest set (tixserve -ingest) and a mutating backend, the
// document endpoints are live too (see Ingestor):
//
//	POST   /docs          {"name": "...", "xml": "..."}  add
//	PUT    /docs/{name}   {"xml": "..."}                 replace
//	DELETE /docs/{name}                                  delete
//
// Results carry scores and the serialized XML of the matched components.
// Every handler runs behind a logging/metrics middleware; request bodies
// are bounded, JSON decoding is strict, and the listener applies full
// read/write/idle timeouts with graceful shutdown support.
//
// # Error schema
//
// Every non-2xx response carries a JSON body of the form
//
//	{"error": "...", "code": "<machine code>", "status": <http status>, "retryable": <bool>}
//
// with these codes:
//
//	bad_request     400  malformed JSON, empty query/terms/phrase
//	unprocessable   422  query parse/evaluation errors
//	limit_exceeded  422  a resource budget (results, store accesses) ran out
//	payload_too_large 413  request body over the configured bound
//	timeout         408  evaluation exceeded its deadline (QueryTimeout or client deadline)
//	canceled        503  the client disconnected mid-evaluation
//	unavailable     503  a storage fault or recovered internal panic
//	rate_limited    429  the client exhausted its admission token bucket
//	overloaded      503  the global concurrency gate shed the request
//	conflict        409  adding a document name that already exists
//	not_found       404  updating/deleting a document that is not loaded
//	not_implemented 501  ingestion disabled or unsupported by the backend
//
// Transient statuses (408, 429, 503) set "retryable": true and carry a
// Retry-After header (integer seconds) so well-behaved clients back off
// rather than hammering a degraded tier; every other error is
// deterministic and marked non-retryable.
//
// Query evaluation runs under the request's context — a client disconnect
// cancels the scan cooperatively — bounded by the server's QueryTimeout.
// With an Admission controller configured, requests pass per-client rate
// limiting and a global concurrency gate before reaching the backend; the
// /readyz endpoint reports whether the tier should receive traffic at all
// (at least one healthy replica, compaction backlog under control),
// distinct from the pure liveness /healthz.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/xmltree"
	"repro/internal/xq"
)

// Backend is the database surface the server runs on: the monolithic
// *db.DB and the sharded *shard.DB both satisfy it, so one server binary
// fronts either layout. All methods must be safe for concurrent read use
// once the backend is fully loaded.
type Backend interface {
	Stats() db.Stats
	DocumentCount() int
	MetricsRegistry() *metrics.Registry
	QueryContext(ctx context.Context, src string) ([]xq.Result, error)
	Explain(src string) (string, error)
	TermSearchContext(ctx context.Context, terms []string, opts db.TermSearchOptions) ([]exec.ScoredNode, error)
	PhraseSearchContext(ctx context.Context, phrase []string) ([]exec.PhraseMatch, error)
	Materialize(doc storage.DocID, ord int32) *xmltree.Node
	NameOf(n exec.ScoredNode) string
}

// Server wraps a database with HTTP handlers. The database must be fully
// loaded before serving; handlers only read, so concurrent requests are
// safe.
type Server struct {
	DB Backend
	// MaxResults caps the number of results returned per request
	// (default 100).
	MaxResults int
	// MaxBodyBytes bounds every request body; oversized bodies are
	// rejected with 413 before decoding (default 1 MiB).
	MaxBodyBytes int64
	// Metrics overrides the registry the HTTP middleware records into and
	// /metrics exposes. When nil, the database's registry is used, so
	// engine and HTTP metrics share one exposition.
	Metrics *metrics.Registry
	// Logger, when non-nil, receives one line per request (method, path,
	// status, duration, bytes, remote address).
	Logger *log.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (wired to the
	// tixserve -pprof flag; off by default — profiling endpoints should
	// not be open on a production port unasked).
	EnablePprof bool
	// QueryTimeout bounds the evaluation time of every query-running
	// request (0 = none). Exceeding it aborts the scan cooperatively and
	// returns 408 with code "timeout". Client disconnects cancel the scan
	// regardless.
	QueryTimeout time.Duration
	// EnableIngest exposes the document mutation endpoints (POST/PUT/
	// DELETE under /docs) when the backend satisfies Ingestor. Off by
	// default: a read-only query server should not accept writes unasked.
	EnableIngest bool
	// Admission, when non-nil, applies admission control (per-client rate
	// limiting plus a global concurrency gate) in front of every handler
	// except the probes (/healthz, /readyz) and /metrics. Rejections
	// return typed 429/503 errors with Retry-After hints.
	Admission *fleet.Admission
	// MaxCompactionBacklog is the /readyz threshold on the backend's
	// outstanding compaction work (frozen memtables plus uncompacted
	// surplus segments): above it the server reports not-ready so load
	// balancers drain traffic until compaction catches up. 0 selects the
	// default (64); negative disables the check. Only backends exposing
	// CompactionBacklog() participate.
	MaxCompactionBacklog int

	started time.Time
}

// New returns a server over a backend (a *db.DB or a sharded *shard.DB).
func New(d Backend) *Server {
	return &Server{DB: d, MaxResults: 100, started: time.Now()}
}

// registry returns the metrics registry this server records into.
func (s *Server) registry() *metrics.Registry {
	if s.Metrics != nil {
		return s.Metrics
	}
	if s.DB != nil {
		return s.DB.MetricsRegistry()
	}
	return metrics.Default
}

// Handler returns the HTTP handler tree, wrapped in the observability
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("POST /terms", s.handleTerms)
	mux.HandleFunc("POST /phrase", s.handlePhrase)
	mux.HandleFunc("POST /docs", s.handleAddDoc)
	mux.HandleFunc("PUT /docs/{name}", s.handleUpdateDoc)
	mux.HandleFunc("DELETE /docs/{name}", s.handleDeleteDoc)
	if s.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.withObservability(s.withAdmission(mux))
}

// httpServer builds the hardened listener configuration.
func (s *Server) httpServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// ListenAndServe serves on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	return s.httpServer(addr).ListenAndServe()
}

// ListenAndServeContext serves on addr until the listener fails or ctx is
// cancelled; on cancellation, in-flight requests drain gracefully for up
// to the given timeout before the server is forced closed.
func (s *Server) ListenAndServeContext(ctx context.Context, addr string, drainTimeout time.Duration) error {
	srv := s.httpServer(addr)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// The drain context must be detached: ctx is already done here,
		// and deriving from it would cancel the graceful drain instantly.
		//tixlint:ignore ctxhygiene intentional detached lifetime — the drain window starts after the caller's context is done
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("server: shutdown: %w", err)
		}
		<-errc // always http.ErrServerClosed after a clean Shutdown
		return nil
	}
}

func (s *Server) maxResults() int {
	if s.MaxResults <= 0 {
		return 100
	}
	return s.MaxResults
}

func (s *Server) maxBodyBytes() int64 {
	if s.MaxBodyBytes <= 0 {
		return 1 << 20
	}
	return s.MaxBodyBytes
}

// queryCtx derives the evaluation context for one request: the request's
// own context (canceled when the client disconnects) bounded by the
// server's per-query timeout.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.QueryTimeout)
	}
	return r.Context(), func() {}
}

// decodeJSON decodes a bounded, strict JSON request body into v. On
// failure it writes the error response (413 for oversized bodies, 400
// otherwise) and returns false.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes())
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			errorJSON(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// ErrorResponse is the JSON body of every non-2xx response (see the
// package documentation for the code taxonomy).
type ErrorResponse struct {
	Error  string `json:"error"`
	Code   string `json:"code"`
	Status int    `json:"status"`
	// Retryable reports whether the same request may succeed if retried
	// after backing off: true exactly for the transient statuses (408,
	// 429, 503), which also carry a Retry-After header.
	Retryable bool `json:"retryable"`
}

// retryable reports whether a status is transient: the request itself is
// fine and may succeed on a later attempt (or a different replica).
func retryable(status int) bool {
	switch status {
	case http.StatusRequestTimeout, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// retryAfterSeconds derives the Retry-After hint for a transient error:
// the admission controller's own estimate when available (rounded up to a
// whole second, the header's granularity), else a conservative 1s.
func retryAfterSeconds(err error) int {
	var ae *fleet.AdmissionError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		secs := int((ae.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		return secs
	}
	return 1
}

// evalStatus maps an evaluation error to its HTTP status: deadline → 408,
// cancellation and storage faults/panics → 503, everything else (parse
// errors, resource limits) → 422.
func evalStatus(err error) int {
	switch {
	case errors.Is(err, exec.ErrDeadlineExceeded):
		return http.StatusRequestTimeout
	case errors.Is(err, exec.ErrCanceled), errors.Is(err, storage.ErrInjectedFault):
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// errorCode derives the machine-readable code of an error response.
func errorCode(status int, err error) string {
	switch {
	case errors.Is(err, fleet.ErrRateLimited):
		return "rate_limited"
	case errors.Is(err, fleet.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, exec.ErrDeadlineExceeded):
		return "timeout"
	case errors.Is(err, exec.ErrCanceled):
		return "canceled"
	case errors.Is(err, exec.ErrLimitExceeded):
		return "limit_exceeded"
	case errors.Is(err, storage.ErrInjectedFault):
		return "unavailable"
	}
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusTooManyRequests:
		return "rate_limited"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusRequestTimeout:
		return "timeout"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusInternalServerError:
		return "internal"
	case http.StatusConflict:
		return "conflict"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusNotImplemented:
		return "not_implemented"
	}
	return "unprocessable"
}

// errorJSON writes the structured JSON error payload; transient statuses
// also carry a Retry-After header.
func errorJSON(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	canRetry := retryable(status)
	if canRetry {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(err)))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{
		Error:     err.Error(),
		Code:      errorCode(status, err),
		Status:    status,
		Retryable: canRetry,
	})
}

// evalError writes the error response for a failed query evaluation.
func evalError(w http.ResponseWriter, err error) {
	errorJSON(w, evalStatus(err), err)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Documents   int   `json:"documents"`
	Nodes       int   `json:"nodes"`
	Elements    int   `json:"elements"`
	Terms       int   `json:"terms"`
	Occurrences int64 `json:"occurrences"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.DB.Stats()
	writeJSON(w, StatsResponse{
		Documents:   st.Documents,
		Nodes:       st.Nodes,
		Elements:    st.Elements,
		Terms:       st.Terms,
		Occurrences: st.Occurrences,
	})
}

// HealthzResponse is the /healthz payload.
type HealthzResponse struct {
	Status        string  `json:"status"`
	Documents     int     `json:"documents"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// handleHealthz is the liveness/readiness probe: cheap (no index forcing),
// always 200 once the process serves, with the loaded-document count so
// orchestration can distinguish "up" from "up and serving data".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, HealthzResponse{
		Status:        "ok",
		Documents:     s.DB.DocumentCount(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// ReadyzResponse is the /readyz payload.
type ReadyzResponse struct {
	Status string `json:"status"` // "ready" or "unavailable"
	// Reason explains a not-ready verdict (empty when ready).
	Reason string `json:"reason,omitempty"`
	// HealthyReplicas counts backends admitting traffic (-1 when the
	// backend is not replicated).
	HealthyReplicas int `json:"healthyReplicas"`
	// CompactionBacklog is the backend's outstanding compaction work
	// (frozen memtables plus surplus segments; 0 when not exposed).
	CompactionBacklog int `json:"compactionBacklog"`
}

// readinessProber is the optional backend surface /readyz consults; the
// fleet implements it (ready once ≥1 replica's breaker admits traffic).
type readinessProber interface {
	Ready() (ok bool, reason string)
}

// compactionBackloger is the optional backend surface reporting
// outstanding compaction work (db.DB, shard.DB and the fleet expose it).
type compactionBackloger interface {
	CompactionBacklog() int
}

// handleReadyz is the traffic-readiness probe, distinct from the /healthz
// liveness probe: a live process may still be unfit for traffic — every
// replica's breaker open, or (with ingestion) a compaction backlog deep
// enough that reads degrade. Not-ready returns 503 with a JSON reason so
// a load balancer can drain the instance while /healthz keeps it alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyzResponse{Status: "ready", HealthyReplicas: -1}
	if cb, ok := s.DB.(compactionBackloger); ok {
		resp.CompactionBacklog = cb.CompactionBacklog()
	}
	if rp, ok := s.DB.(readinessProber); ok {
		if hr, ok := s.DB.(interface{ HealthyReplicas() int }); ok {
			resp.HealthyReplicas = hr.HealthyReplicas()
		}
		if ok, reason := rp.Ready(); !ok {
			resp.Status = "unavailable"
			resp.Reason = reason
		}
	}
	if resp.Status == "ready" && s.EnableIngest {
		max := s.MaxCompactionBacklog
		if max == 0 {
			max = 64
		}
		if max > 0 && resp.CompactionBacklog > max {
			resp.Status = "unavailable"
			resp.Reason = fmt.Sprintf("compaction backlog %d exceeds threshold %d",
				resp.CompactionBacklog, max)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if resp.Status != "ready" {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// handleMetrics exposes the registry in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.registry().WriteText(w)
}

// QueryRequest is the /query payload.
type QueryRequest struct {
	Query string `json:"query"`
}

// QueryResult is one result of /query.
type QueryResult struct {
	Tag   string  `json:"tag"`
	Score float64 `json:"score"`
	Sim   float64 `json:"sim,omitempty"`
	XML   string  `json:"xml"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Query == "" {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("empty query"))
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	results, err := s.DB.QueryContext(ctx, req.Query)
	if err != nil {
		evalError(w, err)
		return
	}
	out := make([]QueryResult, 0, len(results))
	for i, res := range results {
		if i >= s.maxResults() {
			break
		}
		out = append(out, QueryResult{
			Tag:   res.Node.Tag,
			Score: res.Score,
			Sim:   res.Sim,
			XML:   xmltree.XMLString(res.Node),
		})
	}
	writeJSON(w, map[string]interface{}{"count": len(results), "results": out})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Query == "" {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("empty query"))
		return
	}
	plan, err := s.DB.Explain(req.Query)
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, map[string]string{"plan": plan})
}

// TermsRequest is the /terms payload.
type TermsRequest struct {
	Terms    []string `json:"terms"`
	TopK     int      `json:"topK"`
	Complex  bool     `json:"complex"`
	Parallel int      `json:"parallel"`
}

// TermResult is one result of /terms.
type TermResult struct {
	Tag   string  `json:"tag"`
	Doc   int32   `json:"doc"`
	Ord   int32   `json:"ord"`
	Score float64 `json:"score"`
}

func (s *Server) handleTerms(w http.ResponseWriter, r *http.Request) {
	var req TermsRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Terms) == 0 {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("no terms"))
		return
	}
	topK := req.TopK
	if topK <= 0 || topK > s.maxResults() {
		topK = s.maxResults()
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	results, err := s.DB.TermSearchContext(ctx, req.Terms, db.TermSearchOptions{
		TopK: topK, Complex: req.Complex, Parallel: req.Parallel,
	})
	if err != nil {
		evalError(w, err)
		return
	}
	out := make([]TermResult, 0, len(results))
	for _, n := range results {
		out = append(out, TermResult{
			Tag: s.DB.NameOf(n), Doc: int32(n.Doc), Ord: n.Ord, Score: n.Score,
		})
	}
	writeJSON(w, map[string]interface{}{"count": len(out), "results": out})
}

// PhraseRequest is the /phrase payload.
type PhraseRequest struct {
	Phrase []string `json:"phrase"`
}

// PhraseResult is one phrase occurrence.
type PhraseResult struct {
	Doc  int32  `json:"doc"`
	Node int32  `json:"node"`
	Pos  uint32 `json:"pos"`
	Text string `json:"text"`
}

func (s *Server) handlePhrase(w http.ResponseWriter, r *http.Request) {
	var req PhraseRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Phrase) == 0 {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("empty phrase"))
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	ms, err := s.DB.PhraseSearchContext(ctx, req.Phrase)
	if err != nil {
		evalError(w, err)
		return
	}
	out := make([]PhraseResult, 0, len(ms))
	for i, m := range ms {
		if i >= s.maxResults() {
			break
		}
		text := ""
		if n := s.DB.Materialize(m.Doc, m.Node); n != nil {
			text = n.AllText()
		}
		out = append(out, PhraseResult{Doc: int32(m.Doc), Node: m.Node, Pos: m.Pos, Text: text})
	}
	writeJSON(w, map[string]interface{}{"count": len(ms), "results": out})
}

// Package server exposes a TIX database over HTTP with a small JSON API —
// the front end a downstream user would put in front of the engine:
//
//	GET  /stats                      database statistics
//	POST /query    {"query": "..."}  extended-XQuery evaluation
//	POST /terms    {"terms": [...], "topK": 10, "complex": false}
//	POST /phrase   {"phrase": [...]}
//
// Results carry scores and the serialized XML of the matched components.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/db"
	"repro/internal/xmltree"
)

// Server wraps a database with HTTP handlers. The database must be fully
// loaded before serving; handlers only read, so concurrent requests are
// safe.
type Server struct {
	DB *db.DB
	// MaxResults caps the number of results returned per request
	// (default 100).
	MaxResults int
}

// New returns a server over d.
func New(d *db.DB) *Server { return &Server{DB: d, MaxResults: 100} }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("POST /terms", s.handleTerms)
	mux.HandleFunc("POST /phrase", s.handlePhrase)
	return mux
}

// ListenAndServe serves on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}

func (s *Server) maxResults() int {
	if s.MaxResults <= 0 {
		return 100
	}
	return s.MaxResults
}

// errorJSON writes a JSON error payload.
func errorJSON(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Documents   int   `json:"documents"`
	Nodes       int   `json:"nodes"`
	Elements    int   `json:"elements"`
	Terms       int   `json:"terms"`
	Occurrences int64 `json:"occurrences"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.DB.Stats()
	writeJSON(w, StatsResponse{
		Documents:   st.Documents,
		Nodes:       st.Nodes,
		Elements:    st.Elements,
		Terms:       st.Terms,
		Occurrences: st.Occurrences,
	})
}

// QueryRequest is the /query payload.
type QueryRequest struct {
	Query string `json:"query"`
}

// QueryResult is one result of /query.
type QueryResult struct {
	Tag   string  `json:"tag"`
	Score float64 `json:"score"`
	Sim   float64 `json:"sim,omitempty"`
	XML   string  `json:"xml"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Query == "" {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("empty query"))
		return
	}
	results, err := s.DB.Query(req.Query)
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := make([]QueryResult, 0, len(results))
	for i, res := range results {
		if i >= s.maxResults() {
			break
		}
		out = append(out, QueryResult{
			Tag:   res.Node.Tag,
			Score: res.Score,
			Sim:   res.Sim,
			XML:   xmltree.XMLString(res.Node),
		})
	}
	writeJSON(w, map[string]interface{}{"count": len(results), "results": out})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Query == "" {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("empty query"))
		return
	}
	plan, err := s.DB.Explain(req.Query)
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, map[string]string{"plan": plan})
}

// TermsRequest is the /terms payload.
type TermsRequest struct {
	Terms    []string `json:"terms"`
	TopK     int      `json:"topK"`
	Complex  bool     `json:"complex"`
	Parallel int      `json:"parallel"`
}

// TermResult is one result of /terms.
type TermResult struct {
	Tag   string  `json:"tag"`
	Doc   int32   `json:"doc"`
	Ord   int32   `json:"ord"`
	Score float64 `json:"score"`
}

func (s *Server) handleTerms(w http.ResponseWriter, r *http.Request) {
	var req TermsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Terms) == 0 {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("no terms"))
		return
	}
	topK := req.TopK
	if topK <= 0 || topK > s.maxResults() {
		topK = s.maxResults()
	}
	results, err := s.DB.TermSearch(req.Terms, db.TermSearchOptions{
		TopK: topK, Complex: req.Complex, Parallel: req.Parallel,
	})
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := make([]TermResult, 0, len(results))
	for _, n := range results {
		out = append(out, TermResult{
			Tag: s.DB.NameOf(n), Doc: int32(n.Doc), Ord: n.Ord, Score: n.Score,
		})
	}
	writeJSON(w, map[string]interface{}{"count": len(out), "results": out})
}

// PhraseRequest is the /phrase payload.
type PhraseRequest struct {
	Phrase []string `json:"phrase"`
}

// PhraseResult is one phrase occurrence.
type PhraseResult struct {
	Doc  int32  `json:"doc"`
	Node int32  `json:"node"`
	Pos  uint32 `json:"pos"`
	Text string `json:"text"`
}

func (s *Server) handlePhrase(w http.ResponseWriter, r *http.Request) {
	var req PhraseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Phrase) == 0 {
		errorJSON(w, http.StatusBadRequest, fmt.Errorf("empty phrase"))
		return
	}
	ms, err := s.DB.PhraseSearch(req.Phrase)
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := make([]PhraseResult, 0, len(ms))
	for i, m := range ms {
		if i >= s.maxResults() {
			break
		}
		text := ""
		if n := s.DB.Materialize(m.Doc, m.Node); n != nil {
			text = n.AllText()
		}
		out = append(out, PhraseResult{Doc: int32(m.Doc), Node: m.Node, Pos: m.Pos, Text: text})
	}
	writeJSON(w, map[string]interface{}{"count": len(ms), "results": out})
}

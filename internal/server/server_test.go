package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/fixture"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	d := db.New(db.Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadString("reviews.xml", fixture.ReviewsXML); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(d).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, out
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Documents != 2 || st.Nodes == 0 || st.Terms == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/query", QueryRequest{Query: `
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
		Pick $a using PickFoo($a)
		Sortby(score)
		Threshold $a/@score > 4 stop after 5
	`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, out["error"])
	}
	var results []QueryResult
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Tag != "chapter" || results[0].Score != 5.0 {
		t.Errorf("results = %+v", results)
	}
	if !strings.Contains(results[0].XML, "Search and Retrieval") {
		t.Errorf("XML payload missing content")
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/query", QueryRequest{Query: "garbage !!"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad query status = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/query", QueryRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query status = %d", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d", r2.StatusCode)
	}
	// Wrong method.
	r3, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", r3.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/explain", QueryRequest{Query: `
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {})
	`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var plan string
	if err := json.Unmarshal(out["plan"], &plan); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "TermJoin") || !strings.Contains(plan, "PhraseFinder") {
		t.Errorf("plan = %q", plan)
	}
	resp, _ = postJSON(t, ts.URL+"/explain", QueryRequest{Query: "nope"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad query status = %d", resp.StatusCode)
	}
}

func TestTermsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/terms", TermsRequest{Terms: []string{"search", "engine"}, TopK: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var results []TermResult
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Tag != "article" {
		t.Errorf("best tag = %s", results[0].Tag)
	}
	resp, _ = postJSON(t, ts.URL+"/terms", TermsRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no terms status = %d", resp.StatusCode)
	}
}

func TestPhraseEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/phrase", PhraseRequest{Phrase: []string{"information", "retrieval"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var count int
	if err := json.Unmarshal(out["count"], &count); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	var results []PhraseResult
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !strings.Contains(strings.ToLower(r.Text), "information retrieval") {
			t.Errorf("result text %q lacks the phrase", r.Text)
		}
	}
	resp, _ = postJSON(t, ts.URL+"/phrase", PhraseRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty phrase status = %d", resp.StatusCode)
	}
}

func TestMaxResultsCap(t *testing.T) {
	d := db.New(db.Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		t.Fatal(err)
	}
	s := New(d)
	s.MaxResults = 2
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, out := postJSON(t, ts.URL+"/query", QueryRequest{Query: `
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
		Sortby(score)
	`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var results []QueryResult
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Errorf("capped results = %d, want 2", len(results))
	}
	var count int
	if err := json.Unmarshal(out["count"], &count); err != nil {
		t.Fatal(err)
	}
	if count != 11 {
		t.Errorf("total count = %d, want 11", count)
	}
}

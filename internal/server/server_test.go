package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/fixture"
	"repro/internal/metrics"
)

// newIsolatedServer builds a server over the fixture corpus with its own
// metrics registry so tests can assert on exact counts.
func newIsolatedServer(t *testing.T) (*Server, *httptest.Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	d := db.New(db.Options{Stemming: true, Metrics: reg})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadString("reviews.xml", fixture.ReviewsXML); err != nil {
		t.Fatal(err)
	}
	s := New(d)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	_, ts, _ := newIsolatedServer(t)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, out
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Documents != 2 || st.Nodes == 0 || st.Terms == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/query", QueryRequest{Query: `
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
		Pick $a using PickFoo($a)
		Sortby(score)
		Threshold $a/@score > 4 stop after 5
	`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, out["error"])
	}
	var results []QueryResult
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Tag != "chapter" || results[0].Score != 5.0 {
		t.Errorf("results = %+v", results)
	}
	if !strings.Contains(results[0].XML, "Search and Retrieval") {
		t.Errorf("XML payload missing content")
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/query", QueryRequest{Query: "garbage !!"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad query status = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/query", QueryRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query status = %d", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d", r2.StatusCode)
	}
	// Wrong method.
	r3, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", r3.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/explain", QueryRequest{Query: `
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {})
	`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var plan string
	if err := json.Unmarshal(out["plan"], &plan); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "TermJoin") || !strings.Contains(plan, "PhraseFinder") {
		t.Errorf("plan = %q", plan)
	}
	resp, _ = postJSON(t, ts.URL+"/explain", QueryRequest{Query: "nope"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad query status = %d", resp.StatusCode)
	}
}

func TestTermsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/terms", TermsRequest{Terms: []string{"search", "engine"}, TopK: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var results []TermResult
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Tag != "article" {
		t.Errorf("best tag = %s", results[0].Tag)
	}
	resp, _ = postJSON(t, ts.URL+"/terms", TermsRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no terms status = %d", resp.StatusCode)
	}
}

func TestPhraseEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/phrase", PhraseRequest{Phrase: []string{"information", "retrieval"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var count int
	if err := json.Unmarshal(out["count"], &count); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	var results []PhraseResult
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !strings.Contains(strings.ToLower(r.Text), "information retrieval") {
			t.Errorf("result text %q lacks the phrase", r.Text)
		}
	}
	resp, _ = postJSON(t, ts.URL+"/phrase", PhraseRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty phrase status = %d", resp.StatusCode)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	s, ts, _ := newIsolatedServer(t)
	s.MaxBodyBytes = 256
	for _, path := range []string{"/query", "/explain", "/terms", "/phrase"} {
		body := `{"query": "` + strings.Repeat("x", 1024) + `"}`
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body status = %d, want 413", path, resp.StatusCode)
		}
	}
}

func TestUnknownFieldsRejected(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/terms", "application/json",
		strings.NewReader(`{"terms":["a"],"nonsense":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d, want 400", resp.StatusCode)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Documents != 2 || h.UptimeSeconds < 0 {
		t.Errorf("healthz = %+v", h)
	}
}

// TestMetricsEndpoint is the acceptance check of the observability layer:
// after a POST /query, GET /metrics must show nonzero query-latency
// histogram counts, the query's access-stat counters, and the HTTP
// middleware's own request accounting.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/query", QueryRequest{Query: `
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet"})
		Sortby(score)
	`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, out["error"])
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", mr.StatusCode)
	}
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	b, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, want := range []string{
		`tix_query_seconds_count{op="query"} 1`,
		`tix_queries_total{op="query"} 1`,
		`tix_http_requests_total{method="POST",path="/query",status="200"} 1`,
		"# TYPE tix_query_seconds histogram",
		"# TYPE tix_access_node_reads_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	// Access-stat counters must be nonzero after a real query.
	var nodeReads int64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `tix_access_node_reads_total{op="query"} `) {
			if _, err := fmt.Sscanf(line, `tix_access_node_reads_total{op="query"} %d`, &nodeReads); err != nil {
				t.Fatal(err)
			}
		}
	}
	if nodeReads == 0 {
		t.Errorf("node-read counter is zero after a query\n%s", text)
	}
}

func TestTermsTopKCappedByMaxResults(t *testing.T) {
	s, ts, _ := newIsolatedServer(t)
	s.MaxResults = 2
	resp, out := postJSON(t, ts.URL+"/terms", TermsRequest{Terms: []string{"search", "engine"}, TopK: 50})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var results []TermResult
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Errorf("topK beyond MaxResults returned %d results, want 2", len(results))
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	s, _, _ := newIsolatedServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServeContext(ctx, "127.0.0.1:0", 5*time.Second) }()
	time.Sleep(50 * time.Millisecond) // let the listener start
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestMaxResultsCap(t *testing.T) {
	d := db.New(db.Options{Stemming: true})
	if err := d.LoadString("articles.xml", fixture.ArticlesXML); err != nil {
		t.Fatal(err)
	}
	s := New(d)
	s.MaxResults = 2
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, out := postJSON(t, ts.URL+"/query", QueryRequest{Query: `
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
		Sortby(score)
	`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var results []QueryResult
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Errorf("capped results = %d, want 2", len(results))
	}
	var count int
	if err := json.Unmarshal(out["count"], &count); err != nil {
		t.Fatal(err)
	}
	if count != 11 {
		t.Errorf("total count = %d, want 11", count)
	}
}

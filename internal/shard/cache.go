package shard

import (
	"repro/internal/rescache"
)

// Facade-level result caching: the sharded counterparts of the db cache
// hooks (db/cache.go). The cache lives on the facade only — segments are
// constructed without caches — so one logical query is cached once, after
// the per-shard merge and the local→global id translation. Cached slices
// are copied on both put and get, so the facade's in-place id rewrites
// can never corrupt a cached master.

// CacheToken returns the generation token facade cache keys are minted
// under: the sum of the segment generations, which advances on every
// routed mutation. ok=false while any segment lacks a live index (bulk
// loading), when segment store appends would not move the sum.
func (s *DB) CacheToken() (uint64, bool) {
	var sum uint64
	for _, seg := range s.segs {
		g, ok := seg.CacheToken()
		if !ok {
			return 0, false
		}
		sum += g
	}
	return sum, true
}

// EnableResultCache attaches a facade result cache with the given byte
// budget. No-op when one is attached already or maxBytes is not positive.
func (s *DB) EnableResultCache(maxBytes int64) {
	c := rescache.New(rescache.Config{
		MaxBytes:   maxBytes,
		Metrics:    s.MetricsRegistry(),
		Generation: s.CacheToken,
	})
	if c == nil {
		return
	}
	if !s.cache.CompareAndSwap(nil, c) {
		c.Close()
	}
}

// ResultCache returns the attached facade cache, or nil.
func (s *DB) ResultCache() *rescache.Cache { return s.cache.Load() }

// Close releases background resources: the facade cache sweeper and the
// segments' own resources.
func (s *DB) Close() {
	if c := s.cache.Load(); c != nil {
		c.Close()
	}
	for _, seg := range s.segs {
		seg.Close()
	}
}

// queryCache returns the facade cache and the token to key with, or
// ok=false when this call must bypass caching.
func (s *DB) queryCache() (*rescache.Cache, uint64, bool) {
	c := s.cache.Load()
	if c == nil {
		return nil, 0, false
	}
	tok, ok := s.CacheToken()
	if !ok {
		return nil, 0, false
	}
	return c, tok, true
}

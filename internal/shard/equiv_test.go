package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/synth"
	"repro/internal/xmltree"
)

// The sharded facade must satisfy the same server surface as db.DB.
var (
	_ server.Backend = (*DB)(nil)
	_ server.Backend = (*db.DB)(nil)
)

// equivShardCounts is the sweep the differential suite runs: the trivial
// single-shard case, counts that divide the corpus unevenly, and more
// shards than some placements will populate.
var equivShardCounts = []int{1, 2, 3, 8}

// corpusDocs deterministically generates n small documents with planted
// control terms and phrase adjacencies. The returned trees are shared
// between the oracle and every sharded instance — region encodings and
// ordinals are per-document, so the numbering the first load assigns is
// valid in every store.
func corpusDocs(t testing.TB, n int, seed int64) (names []string, roots []*xmltree.Node) {
	t.Helper()
	for i := 0; i < n; i++ {
		cfg := synth.DefaultConfig()
		cfg.Articles = 5
		cfg.Seed = seed + int64(i)
		cfg.ControlTerms = map[string]int{"ctla": 30, "ctlb": 18, "ctlc": 7}
		cfg.Phrases = []synth.PhraseSpec{{T1: "ctla", T2: "ctlb", Together: 5}}
		c, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, fmt.Sprintf("doc%02d.xml", i))
		roots = append(roots, c.Root)
	}
	return names, roots
}

// newOracle loads the documents into a monolithic database. Because the
// sharded facade numbers documents globally in load order, the oracle's
// document ids coincide with the sharded global ids.
func newOracle(t testing.TB, names []string, roots []*xmltree.Node) *db.DB {
	t.Helper()
	d := db.New(db.Options{})
	for i, name := range names {
		if err := d.LoadTree(name, roots[i]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// newSharded loads the same documents into an n-shard database.
func newSharded(t testing.TB, n int, strategy Strategy, names []string, roots []*xmltree.Node) *DB {
	t.Helper()
	s := New(Options{Shards: n, Strategy: strategy})
	for i, name := range names {
		if err := s.LoadTree(name, roots[i]); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// sameScored asserts element-for-element identity (doc, ord, score, order).
func sameScored(t *testing.T, label string, got, want []exec.ScoredNode) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d results, want %d", label, len(got), len(want))
		return
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Doc != w.Doc || g.Ord != w.Ord || math.Abs(g.Score-w.Score) > 1e-12 {
			t.Errorf("%s: result %d = (doc %d, ord %d, score %v), want (doc %d, ord %d, score %v)",
				label, i, g.Doc, g.Ord, g.Score, w.Doc, w.Ord, w.Score)
			return
		}
	}
}

func TestShardedTermSearchMatchesUnsharded(t *testing.T) {
	names, roots := corpusDocs(t, 9, 42)
	oracle := newOracle(t, names, roots)
	terms := []string{"ctla", "ctlb"}
	cases := []struct {
		label string
		opts  db.TermSearchOptions
	}{
		{"simple", db.TermSearchOptions{}},
		{"complex", db.TermSearchOptions{Complex: true}},
		{"enhanced", db.TermSearchOptions{Complex: true, Enhanced: true}},
		{"topk", db.TermSearchOptions{TopK: 10}},
		{"topk-complex", db.TermSearchOptions{Complex: true, TopK: 7}},
		{"minscore", db.TermSearchOptions{MinScore: 1.5}},
		{"minscore-topk", db.TermSearchOptions{MinScore: 1.0, TopK: 5}},
		{"weights", db.TermSearchOptions{Complex: true, Weights: []float64{0.9, 0.3}}},
	}
	for _, tc := range cases {
		want, err := oracle.TermSearchContext(context.Background(), terms, tc.opts)
		if err != nil {
			t.Fatalf("%s: oracle: %v", tc.label, err)
		}
		if len(want) == 0 {
			t.Fatalf("%s: oracle returned no results", tc.label)
		}
		for _, n := range equivShardCounts {
			for _, strat := range []Strategy{ByHash, RoundRobin} {
				s := newSharded(t, n, strat, names, roots)
				got, err := s.TermSearchContext(context.Background(), terms, tc.opts)
				if err != nil {
					t.Fatalf("%s shards=%d %s: %v", tc.label, n, strat, err)
				}
				sameScored(t, fmt.Sprintf("%s shards=%d %s", tc.label, n, strat), got, want)
			}
		}
	}
}

func TestShardedMethodsMatchMonolithic(t *testing.T) {
	names, roots := corpusDocs(t, 6, 77)
	oracle := newOracle(t, names, roots)
	terms := []string{"ctla", "ctlc"}
	for _, method := range []Method{
		MethodTermJoin, MethodEnhancedTermJoin, MethodComp1, MethodComp2, MethodGenMeet,
	} {
		// Monolithic reference: the same operator over the oracle's index.
		q := exec.TermQuery{Terms: terms, Scorer: exec.DefaultScorer{}}
		acc := storage.NewAccessor(oracle.Store())
		var runner interface{ Run(exec.Emit) error }
		switch method {
		case MethodTermJoin:
			runner = &exec.TermJoin{Index: oracle.Index(), Acc: acc, Query: q, ChildCounts: exec.ChildCountNavigate}
		case MethodEnhancedTermJoin:
			runner = &exec.TermJoin{Index: oracle.Index(), Acc: acc, Query: q, ChildCounts: exec.ChildCountIndexed}
		case MethodComp1:
			runner = &exec.Comp1{Index: oracle.Index(), Acc: acc, Query: q}
		case MethodComp2:
			runner = &exec.Comp2{Index: oracle.Index(), Acc: acc, Query: q}
		case MethodGenMeet:
			runner = &exec.GenMeet{Index: oracle.Index(), Acc: acc, Query: q}
		}
		want, err := exec.Collect(runner.Run)
		if err != nil {
			t.Fatalf("%s: oracle: %v", method, err)
		}
		exec.SortRanked(want)
		if len(want) == 0 {
			t.Fatalf("%s: oracle returned no results", method)
		}
		for _, n := range equivShardCounts {
			s := newSharded(t, n, ByHash, names, roots)
			got, err := s.RunTermMethod(context.Background(), method, terms, false)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", method, n, err)
			}
			sameScored(t, fmt.Sprintf("%s shards=%d", method, n), got, want)
		}
	}
}

func TestShardedPhraseMatchesUnsharded(t *testing.T) {
	names, roots := corpusDocs(t, 7, 99)
	oracle := newOracle(t, names, roots)
	phrase := []string{"ctla", "ctlb"}
	want, err := oracle.PhraseSearchContext(context.Background(), phrase)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("oracle found no phrase occurrences")
	}
	for _, n := range equivShardCounts {
		s := newSharded(t, n, ByHash, names, roots)
		got, err := s.PhraseSearchContext(context.Background(), phrase)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d matches, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: match %d = %+v, want %+v", n, i, got[i], want[i])
			}
		}
	}
}

func TestShardedTwigMatchesUnsharded(t *testing.T) {
	names, roots := corpusDocs(t, 6, 123)
	oracle := newOracle(t, names, roots)
	patterns := []*exec.TwigNode{
		exec.Twig("article", exec.Twig("snm")),
		exec.Twig("sec", exec.Twig("p")),
	}
	for pi, pattern := range patterns {
		want, err := oracle.TwigRefsContext(context.Background(), pattern)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("pattern %d: oracle found no twig matches", pi)
		}
		for _, n := range equivShardCounts {
			s := newSharded(t, n, ByHash, names, roots)
			got, err := s.TwigRefsContext(context.Background(), pattern)
			if err != nil {
				t.Fatalf("pattern %d shards=%d: %v", pi, n, err)
			}
			if len(got) != len(want) {
				t.Fatalf("pattern %d shards=%d: %d refs, want %d", pi, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("pattern %d shards=%d: ref %d = %+v, want %+v", pi, n, i, got[i], want[i])
				}
			}
		}
	}
}

// queryFor builds the full query pipeline (Score, Pick, Sortby, Threshold)
// against one document — the per-document-routed family the facade
// supports.
func queryFor(name string) string {
	return fmt.Sprintf(`
		For $a in document(%q)//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"ctla ctlb"}, {"ctlc"})
		Pick $a using PickFoo($a, 0.8)
		Sortby(score)
		Threshold $a/@score stop after 10`, name)
}

func TestShardedQueryMatchesUnsharded(t *testing.T) {
	names, roots := corpusDocs(t, 5, 7)
	oracle := newOracle(t, names, roots)
	for _, name := range names {
		src := queryFor(name)
		want, err := oracle.QueryContext(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("%s: oracle returned no results", name)
		}
		for _, n := range equivShardCounts {
			s := newSharded(t, n, ByHash, names, roots)
			got, err := s.QueryContext(context.Background(), src)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, n, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s shards=%d: %d results, want %d", name, n, len(got), len(want))
			}
			for i := range want {
				g, w := got[i], want[i]
				if g.Doc != w.Doc || g.Ord != w.Ord || math.Abs(g.Score-w.Score) > 1e-12 {
					t.Fatalf("%s shards=%d: result %d = (doc %d, ord %d, score %v), want (doc %d, ord %d, score %v)",
						name, n, i, g.Doc, g.Ord, g.Score, w.Doc, w.Ord, w.Score)
				}
				if g.Node.Start != w.Node.Start || g.Node.End != w.Node.End || g.Node.Tag != w.Node.Tag {
					t.Fatalf("%s shards=%d: result %d node = <%s> [%d,%d], want <%s> [%d,%d]",
						name, n, i, g.Node.Tag, g.Node.Start, g.Node.End, w.Node.Tag, w.Node.Start, w.Node.End)
				}
			}
		}
	}
}

func TestCrossShardQueryRejected(t *testing.T) {
	names, roots := corpusDocs(t, 4, 11)
	s := newSharded(t, 2, RoundRobin, names, roots)
	// Round-robin over 2 shards puts doc00 and doc01 on different shards.
	src := fmt.Sprintf(`
		For $a in document(%q)//article[/au/snm/text()="x"]
		For $b in document(%q)//article
		Let $sim := ScoreSim($a/atl, $b/atl)
		Where $sim > 0
		For $d in $a/descendant-or-self::*
		Score $d using ScoreFoo($d, {"ctla"}, {})
		Score $r using ScoreBar($sim, $d)
		Sortby(score)`, names[0], names[1])
	if _, err := s.QueryContext(context.Background(), src); !errors.Is(err, ErrCrossShard) {
		t.Fatalf("cross-shard query err = %v, want ErrCrossShard", err)
	}
	// The same two documents on one shard evaluate fine (no parse-level
	// rejection): a single-shard layout accepts any join.
	one := newSharded(t, 1, ByHash, names, roots)
	if _, err := one.QueryContext(context.Background(), src); err != nil {
		t.Fatalf("single-shard join query: %v", err)
	}
	// An unknown document is reported by name.
	if _, err := s.Query(`For $a in document("missing.xml")//p Sortby(score)`); err == nil {
		t.Fatal("query over unknown document accepted")
	}
}

func TestShardedMaterializeAndNames(t *testing.T) {
	names, roots := corpusDocs(t, 5, 3)
	oracle := newOracle(t, names, roots)
	s := newSharded(t, 3, ByHash, names, roots)
	res, err := s.TermSearch([]string{"ctla"}, db.TermSearchOptions{TopK: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		want := oracle.Materialize(r.Doc, r.Ord)
		got := s.Materialize(r.Doc, r.Ord)
		if got == nil || want == nil {
			t.Fatalf("materialize (doc %d, ord %d): got %v, want %v", r.Doc, r.Ord, got, want)
		}
		if got.Tag != want.Tag || got.Start != want.Start || got.End != want.End {
			t.Fatalf("materialize (doc %d, ord %d): <%s> [%d,%d], want <%s> [%d,%d]",
				r.Doc, r.Ord, got.Tag, got.Start, got.End, want.Tag, want.Start, want.End)
		}
		if gn, wn := s.NameOf(r), oracle.NameOf(r); gn != wn {
			t.Fatalf("NameOf(doc %d, ord %d) = %q, want %q", r.Doc, r.Ord, gn, wn)
		}
	}
	// Out-of-range global ids are nil/empty, not panics.
	if n := s.Materialize(storage.DocID(999), 0); n != nil {
		t.Errorf("materialize of unknown doc = %v", n)
	}
	if name := s.NameOf(exec.ScoredNode{Doc: 999}); name != "" {
		t.Errorf("NameOf unknown doc = %q", name)
	}
}

func TestShardedStatsMatchUnsharded(t *testing.T) {
	names, roots := corpusDocs(t, 6, 21)
	oracle := newOracle(t, names, roots)
	want := oracle.Stats()
	for _, n := range equivShardCounts {
		s := newSharded(t, n, ByHash, names, roots)
		got := s.Stats()
		if got != want {
			t.Errorf("shards=%d: stats = %+v, want %+v", n, got, want)
		}
		if s.DocumentCount() != len(names) {
			t.Errorf("shards=%d: DocumentCount = %d, want %d", n, s.DocumentCount(), len(names))
		}
		for gid, name := range names {
			if got := s.DocName(storage.DocID(gid)); got != name {
				t.Errorf("shards=%d: DocName(%d) = %q, want %q", n, gid, got, name)
			}
		}
	}
}

package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/rescache"
	"repro/internal/scoring"
	"repro/internal/storage"
	"repro/internal/xmltree"
	"repro/internal/xq"
)

// shardFailure is the first worker failure of one fan-out, latched so
// every caller observes the same root cause: when one shard trips a fault
// the fan-out cancels the rest, and their ErrCanceled follow-on errors
// must not mask the fault that started it.
type shardFailure struct {
	shard int
	err   error
}

// runShards executes fn once per segment on its own goroutine and waits
// for all of them. A worker panic (an injected storage fault, an operator
// bug) is contained and classified; the first failure latches and, via
// cancel, aborts the remaining workers cooperatively through the shared
// guard. Per-worker latency and failures are recorded under the op label.
func (s *DB) runShards(op string, cancel context.CancelFunc, fn func(i int, seg *db.DB) error) error {
	reg := s.MetricsRegistry()
	var wg sync.WaitGroup
	var first atomic.Pointer[shardFailure]
	for i := range s.segs {
		wg.Add(1)
		go func(i int, seg *db.DB) {
			defer wg.Done()
			start := time.Now()
			var err error
			defer func() {
				if r := recover(); r != nil {
					err = panicError(r)
				}
				lbl := fmt.Sprintf(`{op=%q,shard="%d"}`, op, i)
				reg.Histogram("tix_shard_seconds" + lbl).Observe(time.Since(start).Seconds())
				if err != nil {
					reg.Counter("tix_shard_errors_total" + lbl).Inc()
					if first.CompareAndSwap(nil, &shardFailure{shard: i, err: err}) && cancel != nil {
						cancel()
					}
				}
			}()
			err = fn(i, seg)
		}(i, s.segs[i])
	}
	wg.Wait()
	if f := first.Load(); f != nil {
		return fmt.Errorf("shard: shard %d: %w", f.shard, f.err)
	}
	return nil
}

// fanoutCtx derives the context a fan-out's shared guard watches: always
// cancelable, so the first worker failure stops the other shards within
// one check interval.
func fanoutCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithCancel(ctx)
}

// TermSearch scores every element containing at least one of the terms,
// fanning the TermJoin out across shards, and returns results best-first
// under the exec.RankedBefore contract. See db.TermSearchOptions; the
// Parallel option is ignored — shard workers are the parallelism here.
func (s *DB) TermSearch(terms []string, opts db.TermSearchOptions) ([]exec.ScoredNode, error) {
	return s.TermSearchContext(context.Background(), terms, opts)
}

// TermSearchContext is TermSearch with cooperative cancellation and
// resource budgets shared across the shard workers. With TopK set, the
// limit is pushed down — each shard retains its own k best — and the
// merger re-thresholds to the global k, which is exact because any
// globally top-k element is in its shard's top k.
func (s *DB) TermSearchContext(ctx context.Context, terms []string, opts db.TermSearchOptions) (results []exec.ScoredNode, err error) {
	start := time.Now()
	per := make([][]exec.ScoredNode, len(s.segs))
	stats := make([]storage.AccessStats, len(s.segs))
	defer func() {
		var total storage.AccessStats
		for _, st := range stats {
			total.Add(st)
		}
		s.observe(opTerms, start, len(results), total, err)
	}()
	eff := s.limitsOr(opts.Limits)
	if c, tok, ok := s.queryCache(); ok {
		key := rescache.TermKey(tok, terms, rescache.TermOpts{
			Complex: opts.Complex, TopK: opts.TopK, MinScore: opts.MinScore,
			Weights: opts.Weights, Limits: eff,
		})
		if hit, found := rescache.GetSlice[exec.ScoredNode](c, key); found {
			results = hit
			return results, nil
		}
		// Registered before recoverPanic so a recovered panic reaches err
		// first and poisoned results are never cached.
		defer func() {
			if err == nil {
				rescache.PutSlice(c, key, results)
			}
		}()
	}
	defer recoverPanic(&err)
	cctx, cancel := fanoutCtx(ctx)
	defer cancel()
	guard := exec.NewGuard(cctx, eff)
	mode := exec.ChildCountNavigate
	if opts.Enhanced {
		mode = exec.ChildCountIndexed
	}
	q := exec.TermQuery{
		Terms:   terms,
		Complex: opts.Complex,
		Scorer: exec.DefaultScorer{
			SimpleFn:  scoring.SimpleScorer{Weights: opts.Weights},
			ComplexFn: scoring.ComplexScorer{Weights: opts.Weights},
		},
	}
	err = s.runShards(opTerms, cancel, func(i int, seg *db.DB) error {
		acc := guard.NewAccessor(seg.Store())
		tj := &exec.TermJoin{Index: seg.Index(), Acc: acc, Query: q, ChildCounts: mode, Guard: guard}
		run := func(emit exec.Emit) error {
			if opts.MinScore > 0 {
				emit = exec.FilterMinScore(opts.MinScore, emit)
			}
			return tj.Run(emit)
		}
		var out []exec.ScoredNode
		var rerr error
		if opts.TopK > 0 {
			tk := exec.NewTopK(opts.TopK)
			rerr = run(tk.Emit())
			out = tk.Results()
		} else {
			out, rerr = exec.Collect(run)
			exec.SortRanked(out)
		}
		stats[i] = acc.Stats
		if rerr != nil {
			return rerr
		}
		s.toGlobal(i, out)
		per[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = mergeRanked(per)
	if opts.TopK > 0 && len(results) > opts.TopK {
		results = results[:opts.TopK]
	}
	return results, nil
}

// Method selects the access method RunTermMethod fans out — the paper's
// Table 1–4 columns.
type Method string

// The sharded term access methods.
const (
	MethodTermJoin         Method = "TermJoin"
	MethodEnhancedTermJoin Method = "EnhTermJoin"
	MethodComp1            Method = "Comp1"
	MethodComp2            Method = "Comp2"
	MethodGenMeet          Method = "GenMeet"
)

// RunTermMethod executes one term access method — TermJoin, the Enhanced
// variant, or the Comp1/Comp2/GenMeet baselines — per shard in parallel
// and returns the merged results under the RankedBefore contract. It is
// the benchmark and differential-test entry point; TermSearchContext is
// the production facade.
func (s *DB) RunTermMethod(ctx context.Context, method Method, terms []string, complex bool) (results []exec.ScoredNode, err error) {
	start := time.Now()
	per := make([][]exec.ScoredNode, len(s.segs))
	stats := make([]storage.AccessStats, len(s.segs))
	defer func() {
		var total storage.AccessStats
		for _, st := range stats {
			total.Add(st)
		}
		s.observe(opTerms, start, len(results), total, err)
	}()
	defer recoverPanic(&err)
	cctx, cancel := fanoutCtx(ctx)
	defer cancel()
	guard := exec.NewGuard(cctx, s.opts.Limits)
	q := exec.TermQuery{Terms: terms, Complex: complex, Scorer: exec.DefaultScorer{}}
	err = s.runShards(opTerms, cancel, func(i int, seg *db.DB) error {
		acc := guard.NewAccessor(seg.Store())
		var runner interface{ Run(exec.Emit) error }
		switch method {
		case MethodTermJoin:
			runner = &exec.TermJoin{Index: seg.Index(), Acc: acc, Query: q, ChildCounts: exec.ChildCountNavigate, Guard: guard}
		case MethodEnhancedTermJoin:
			runner = &exec.TermJoin{Index: seg.Index(), Acc: acc, Query: q, ChildCounts: exec.ChildCountIndexed, Guard: guard}
		case MethodComp1:
			runner = &exec.Comp1{Index: seg.Index(), Acc: acc, Query: q, Guard: guard}
		case MethodComp2:
			runner = &exec.Comp2{Index: seg.Index(), Acc: acc, Query: q, Guard: guard}
		case MethodGenMeet:
			runner = &exec.GenMeet{Index: seg.Index(), Acc: acc, Query: q, Guard: guard}
		default:
			return fmt.Errorf("shard: unknown term method %q", method)
		}
		out, rerr := exec.Collect(runner.Run)
		stats[i] = acc.Stats
		if rerr != nil {
			return rerr
		}
		exec.SortRanked(out)
		s.toGlobal(i, out)
		per[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	results = mergeRanked(per)
	return results, nil
}

// PhraseSearch returns every occurrence of the phrase via per-shard
// PhraseFinders, merged into (document, position) order — the same order
// the monolithic PhraseFinder emits.
func (s *DB) PhraseSearch(phrase []string) ([]exec.PhraseMatch, error) {
	return s.PhraseSearchContext(context.Background(), phrase)
}

// PhraseSearchContext is PhraseSearch with cooperative cancellation and
// the shared default resource limits.
func (s *DB) PhraseSearchContext(ctx context.Context, phrase []string) (ms []exec.PhraseMatch, err error) {
	start := time.Now()
	per := make([][]exec.PhraseMatch, len(s.segs))
	stats := make([]storage.AccessStats, len(s.segs))
	defer func() {
		var total storage.AccessStats
		for _, st := range stats {
			total.Add(st)
		}
		s.observe(opPhrase, start, len(ms), total, err)
	}()
	if c, tok, ok := s.queryCache(); ok {
		key := rescache.PhraseKey(tok, phrase, s.opts.Limits)
		if hit, found := rescache.GetSlice[exec.PhraseMatch](c, key); found {
			ms = hit
			return ms, nil
		}
		defer func() {
			if err == nil {
				rescache.PutSlice(c, key, ms)
			}
		}()
	}
	defer recoverPanic(&err)
	cctx, cancel := fanoutCtx(ctx)
	defer cancel()
	guard := exec.NewGuard(cctx, s.opts.Limits)
	err = s.runShards(opPhrase, cancel, func(i int, seg *db.DB) error {
		pf := &exec.PhraseFinder{Index: seg.Index(), Phrase: phrase, Guard: guard}
		out, rerr := exec.CollectPhrase(pf.Run)
		stats[i] = pf.AccessStats()
		if rerr != nil {
			return rerr
		}
		ids := s.globalIDs(i)
		for j := range out {
			out[j].Doc = ids[out[j].Doc]
		}
		per[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	ms = mergePhrase(per)
	return ms, nil
}

// TwigRefsContext runs the holistic twig join per shard in parallel and
// returns the deduplicated pattern-root bindings in global document
// order, as db.TwigRef values carrying global document ids.
func (s *DB) TwigRefsContext(ctx context.Context, pattern *exec.TwigNode) (out []db.TwigRef, err error) {
	start := time.Now()
	per := make([][]db.TwigRef, len(s.segs))
	stats := make([]storage.AccessStats, len(s.segs))
	defer func() {
		var total storage.AccessStats
		for _, st := range stats {
			total.Add(st)
		}
		s.observe(opTwig, start, len(out), total, err)
	}()
	defer recoverPanic(&err)
	cctx, cancel := fanoutCtx(ctx)
	defer cancel()
	guard := exec.NewGuard(cctx, s.opts.Limits)
	err = s.runShards(opTwig, cancel, func(i int, seg *db.DB) error {
		ids := s.globalIDs(i)
		var refs []db.TwigRef
		for _, doc := range seg.Store().Docs() {
			ts := &exec.TwigStack{Store: seg.Store(), Doc: doc.ID, Root: pattern, Guard: guard}
			matches, terr := ts.Run()
			stats[i].Add(ts.AccessStats())
			if terr != nil {
				return terr
			}
			seen := map[int32]bool{}
			for _, m := range matches {
				root := m[0]
				if seen[root] {
					continue
				}
				seen[root] = true
				refs = append(refs, db.TwigRef{Doc: ids[doc.ID], Ord: root})
			}
		}
		per[i] = refs
		return nil
	})
	if err != nil {
		return nil, err
	}
	out = mergeTwigRefs(per)
	return out, nil
}

// TwigSearchContext is TwigRefsContext with the matches materialized as
// subtrees, in global document order — the sharded counterpart of
// db.TwigSearchContext.
func (s *DB) TwigSearchContext(ctx context.Context, pattern *exec.TwigNode) ([]*xmltree.Node, error) {
	refs, err := s.TwigRefsContext(ctx, pattern)
	if err != nil {
		return nil, err
	}
	out := make([]*xmltree.Node, 0, len(refs))
	for _, ref := range refs {
		loc, ok := s.refOf(ref.Doc)
		if !ok {
			continue
		}
		out = append(out, s.segs[loc.shard].Store().Doc(loc.local).TreeNode(ref.Ord))
	}
	return out, nil
}

// ErrCrossShard reports an extended-XQuery query whose document() clauses
// resolve to more than one shard; the join shapes evaluate inside a
// single store, so such queries must be routed to a co-resident layout
// (or evaluated unsharded).
var ErrCrossShard = fmt.Errorf("shard: query references documents on different shards")

// routeQuery parses src and returns the shard owning every document the
// query references.
func (s *DB) routeQuery(src string) (int, error) {
	q, err := xq.Parse(src)
	if err != nil {
		return 0, err
	}
	shard := -1
	for _, f := range q.Fors {
		name := f.Path.Document
		if name == "" {
			continue
		}
		owner, ok := s.ShardOf(name)
		if !ok {
			return 0, fmt.Errorf("shard: document %q not loaded", name)
		}
		if shard == -1 {
			shard = owner
		} else if owner != shard {
			return 0, ErrCrossShard
		}
	}
	if shard == -1 {
		shard = 0
	}
	return shard, nil
}

// Query parses and evaluates an extended-XQuery query against the shard
// owning its documents. Results carry global document ids.
func (s *DB) Query(src string) ([]xq.Result, error) {
	return s.QueryContext(context.Background(), src)
}

// QueryContext is Query with cooperative cancellation and the default
// resource limits.
func (s *DB) QueryContext(ctx context.Context, src string) ([]xq.Result, error) {
	return s.QueryLimited(ctx, src, s.opts.Limits)
}

// QueryLimited is QueryContext with an explicit per-call resource budget.
func (s *DB) QueryLimited(ctx context.Context, src string, limits exec.Limits) ([]xq.Result, error) {
	eff := s.limitsOr(limits)
	c, tok, cacheable := s.queryCache()
	var key rescache.Key
	if cacheable {
		key = rescache.QueryKey(tok, src, eff)
		if hit, found := rescache.GetSlice[xq.Result](c, key); found {
			return hit, nil
		}
	}
	i, err := s.routeQuery(src)
	if err != nil {
		return nil, err
	}
	results, err := s.segs[i].QueryLimited(ctx, src, eff)
	if err != nil {
		return nil, err
	}
	ids := s.globalIDs(i)
	for j := range results {
		results[j].Doc = ids[results[j].Doc]
	}
	if cacheable {
		rescache.PutSlice(c, key, results)
	}
	return results, nil
}

// QueryRenderedContext evaluates a query on its owning shard and renders
// each result through the query's Return template.
func (s *DB) QueryRenderedContext(ctx context.Context, src string) ([]string, []xq.Result, error) {
	i, err := s.routeQuery(src)
	if err != nil {
		return nil, nil, err
	}
	rendered, results, err := s.segs[i].QueryRenderedContext(ctx, src)
	if err != nil {
		return nil, nil, err
	}
	ids := s.globalIDs(i)
	for j := range results {
		results[j].Doc = ids[results[j].Doc]
	}
	return rendered, results, nil
}

// Explain renders the physical plan for a query on its owning shard.
func (s *DB) Explain(src string) (string, error) {
	i, err := s.routeQuery(src)
	if err != nil {
		return "", err
	}
	return s.segs[i].Explain(src)
}

package shard

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/storage"
)

// Routed ingestion: the sharded counterparts of db.Add/Update/Delete.
// Documents route to segments exactly as loads do (ByHash keeps the
// placement stable across restarts; RoundRobin follows the cursor), so a
// corpus grown through Add matches one bulk-loaded from the same names.
// Mutations are serialized by the facade lock; queries keep running
// against per-segment snapshots and translate ids under the read lock.
//
// Global ids are never reused. An Update keeps the document's global id
// (results for the new content carry the old identity) while the segment
// allocates a fresh local id underneath; a Delete retires the name and
// leaves a dead global slot behind.

// syncTables realigns the routing tables after a segment mutation failed:
// when the segment consumed no local document id (e.g. the source failed
// to parse), the speculative table entries are rolled back; when it did
// (the document was indexed partially and tombstoned), the dead mapping
// stays, keeping globalOf aligned with the segment's local numbering.
// Caller holds s.mu.
func (s *DB) syncTables(i int, popDocs bool) {
	n := s.segs[i].Store().NumDocs()
	if len(s.globalOf[i]) > n {
		s.globalOf[i] = s.globalOf[i][:n]
		if popDocs {
			s.docs = s.docs[:len(s.docs)-1]
			s.names = s.names[:len(s.names)-1]
		}
	}
}

// Add parses src and ingests it into the segment the document's name
// routes to. The document is queryable across the facade as soon as Add
// returns. Adding a loaded name fails with db.ErrDocumentExists.
func (s *DB) Add(name, src string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[name]; dup {
		return fmt.Errorf("shard: add %q: %w", name, db.ErrDocumentExists)
	}
	i := s.pickShard(name)
	seg := s.segs[i]
	// Register the id translation before the segment mutation: the moment
	// the document becomes visible in a segment snapshot, a concurrent
	// query may need its global id.
	gid := storage.DocID(len(s.docs))
	local := storage.DocID(seg.Store().NumDocs())
	s.docs = append(s.docs, docRef{shard: i, local: local})
	s.names = append(s.names, name)
	s.globalOf[i] = append(s.globalOf[i], gid)
	if err := seg.Add(name, src); err != nil {
		s.syncTables(i, true)
		return err
	}
	s.byName[name] = gid
	s.next++
	s.shardGauge(i)
	return nil
}

// Update replaces the named document in place: same global id, same
// segment, fresh content (and a fresh segment-local id underneath).
func (s *DB) Update(name, src string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gid, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("shard: update %q: %w", name, db.ErrDocumentNotFound)
	}
	old := s.docs[gid]
	seg := s.segs[old.shard]
	local := storage.DocID(seg.Store().NumDocs())
	s.docs[gid] = docRef{shard: old.shard, local: local}
	s.globalOf[old.shard] = append(s.globalOf[old.shard], gid)
	if err := seg.Update(name, src); err != nil {
		s.syncTables(old.shard, false)
		if seg.Store().DocByName(name) == nil {
			// The old version was tombstoned before the failure: the
			// document is gone, not restored.
			delete(s.byName, name)
		} else {
			s.docs[gid] = old
		}
		s.shardGauge(old.shard)
		return err
	}
	s.shardGauge(old.shard)
	return nil
}

// Delete tombstones the named document in its segment and retires its
// global id (the slot is never reused). The name becomes available for a
// future Add, which may route it to the same segment again.
func (s *DB) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gid, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("shard: delete %q: %w", name, db.ErrDocumentNotFound)
	}
	ref := s.docs[gid]
	if err := s.segs[ref.shard].Delete(name); err != nil {
		return err
	}
	delete(s.byName, name)
	s.shardGauge(ref.shard)
	return nil
}

// AllocatedDocIDs returns the global document-id allocation cursor: the
// number of global ids ever handed out across all segments, live or
// dead. The replicated fleet compares cursors across replicas to detect
// and repair numbering drift after a partial replicated mutation.
func (s *DB) AllocatedDocIDs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// BurnDocID consumes one global document id: a dead, nameless slot is
// appended to the global table so the next Add allocates the id after
// it. The replicated fleet burns ids on replicas that a partially-failed
// mutation never reached (see fleet.Fleet.Add). A burned slot resolves
// to no segment (refOf reports it unknown), never appears in results,
// and exists only at runtime — a drifted replica is re-synced by
// reloading, not by snapshotting its burned slots.
func (s *DB) BurnDocID() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs = append(s.docs, docRef{shard: -1})
	s.names = append(s.names, "")
	return nil
}

// Generation returns the sum of the segment generations — a cheap
// staleness token that changes whenever any segment mutates.
func (s *DB) Generation() uint64 {
	var g uint64
	for _, seg := range s.segs {
		g += seg.Generation()
	}
	return g
}

// CompactNow synchronously folds every segment's live index.
func (s *DB) CompactNow() {
	for _, seg := range s.segs {
		seg.CompactNow()
	}
}

// WaitCompaction blocks until every segment's in-flight background
// compaction finishes.
func (s *DB) WaitCompaction() {
	for _, seg := range s.segs {
		seg.WaitCompaction()
	}
}

// CompactionBacklog returns the summed outstanding compaction work across
// all segments (see db.DB.CompactionBacklog).
func (s *DB) CompactionBacklog() int {
	var n int
	for _, seg := range s.segs {
		n += seg.CompactionBacklog()
	}
	return n
}

package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/xmltree"
)

// TestRoutedIngestMatchesBulkLoad grows a sharded database one Add at a
// time and checks it answers exactly like one bulk-loaded from the same
// corpus: ByHash placement depends only on names, and global ids follow
// insertion order in both paths.
func TestRoutedIngestMatchesBulkLoad(t *testing.T) {
	names, roots := corpusDocs(t, 9, 404)
	for _, n := range equivShardCounts {
		bulk := newSharded(t, n, ByHash, names, roots)
		bulk.Warm()

		grown := New(Options{Shards: n, Strategy: ByHash})
		grown.Warm() // live from the start: every Add is incremental
		for i, name := range names {
			if err := grown.Add(name, xmltree.XMLString(roots[i])); err != nil {
				t.Fatal(err)
			}
		}

		for _, terms := range [][]string{{"ctla"}, {"ctla", "ctlb"}, {"ctlc"}} {
			label := fmt.Sprintf("shards=%d terms=%v", n, terms)
			want, err := bulk.TermSearch(terms, db.TermSearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := grown.TermSearch(terms, db.TermSearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sameScored(t, label, got, want)
		}
		if got, want := grown.DocumentCount(), bulk.DocumentCount(); got != want {
			t.Fatalf("shards=%d: DocumentCount = %d, want %d", n, got, want)
		}
	}
}

func TestShardUpdateDelete(t *testing.T) {
	s := New(Options{Shards: 3, Strategy: ByHash})
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("doc%d.xml", i)
		if err := s.Add(name, fmt.Sprintf(`<d><t>stable filler%d</t></d>`, i)); err != nil {
			t.Fatal(err)
		}
	}
	gen := s.Generation()

	// Duplicate add is a conflict.
	if err := s.Add("doc0.xml", `<d><t>dup</t></d>`); !errors.Is(err, db.ErrDocumentExists) {
		t.Fatalf("duplicate Add err = %v, want ErrDocumentExists", err)
	}

	// Update keeps the global id but swaps content.
	oldName := s.DocName(2)
	if err := s.Update(oldName, `<d><t>stable replaced</t></d>`); err != nil {
		t.Fatal(err)
	}
	if got := s.DocName(2); got != oldName {
		t.Fatalf("Update changed the global id mapping: DocName(2) = %q", got)
	}
	res, err := s.TermSearch([]string{"replaced"}, db.TermSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("updated content not searchable")
	}
	for _, n := range res {
		if n.Doc != 2 {
			t.Fatalf("updated content surfaced under global id %d, want 2", n.Doc)
		}
	}
	if res, _ := s.TermSearch([]string{"filler2"}, db.TermSearchOptions{}); len(res) != 0 {
		t.Fatalf("old content of an updated document still searchable: %v", res)
	}

	// Delete removes the document everywhere.
	if err := s.Delete("doc4.xml"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("doc4.xml"); !errors.Is(err, db.ErrDocumentNotFound) {
		t.Fatalf("double Delete err = %v, want ErrDocumentNotFound", err)
	}
	if res, _ := s.TermSearch([]string{"filler4"}, db.TermSearchOptions{}); len(res) != 0 {
		t.Fatalf("deleted document still searchable: %v", res)
	}
	if got := s.DocumentCount(); got != 5 {
		t.Fatalf("DocumentCount = %d after delete, want 5", got)
	}
	if s.Generation() == gen {
		t.Fatal("mutations did not advance the generation")
	}

	// The retired name is available again and routes stably.
	if err := s.Add("doc4.xml", `<d><t>stable reborn</t></d>`); err != nil {
		t.Fatal(err)
	}
	res, err = s.TermSearch([]string{"reborn"}, db.TermSearchOptions{})
	if err != nil || len(res) == 0 {
		t.Fatalf("re-added document not searchable: %v, %v", res, err)
	}
	for _, n := range res {
		if n.Doc == 4 {
			t.Fatal("re-added document reused its retired global id")
		}
	}
}

// TestShardIngestWhileQuerying races routed Adds against term searches;
// run under -race this is the shard-level smoke test for the LSM layer's
// snapshot isolation.
func TestShardIngestWhileQuerying(t *testing.T) {
	s := New(Options{Shards: 2, Strategy: ByHash})
	if err := s.Add("seed.xml", `<d><t>stable seed</t></d>`); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.TermSearch([]string{"stable"}, db.TermSearchOptions{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 80; i++ {
		if err := s.Add(fmt.Sprintf("live%03d.xml", i), fmt.Sprintf(`<d><t>stable w%d</t></d>`, i%7)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	s.WaitCompaction()
	res, err := s.TermSearch([]string{"stable"}, db.TermSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results after concurrent ingest")
	}
}

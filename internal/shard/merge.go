package shard

import (
	"repro/internal/db"
	"repro/internal/exec"
)

// The merge step is where sharded evaluation re-establishes the
// single-store ordering contract. Every per-shard run arrives already
// sorted (workers sort or TopK their own output), so the merger only
// interleaves sorted runs. Shard counts are small, so a linear scan of
// the run heads per output element beats a heap on constant factors and
// stays obviously deterministic.

// kwayMerge interleaves sorted runs under less. When two heads compare
// equal it takes the lower-indexed run first — irrelevant for the scored
// merge (the RankedBefore order is total over distinct elements) but it
// keeps the function deterministic for any caller.
func kwayMerge[T any](runs [][]T, less func(a, b T) bool) []T {
	total := 0
	live := 0
	for _, r := range runs {
		total += len(r)
		if len(r) > 0 {
			live++
		}
	}
	if live <= 1 {
		for _, r := range runs {
			if len(r) > 0 {
				return r
			}
		}
		return nil
	}
	out := make([]T, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if heads[i] >= len(r) {
				continue
			}
			if best == -1 || less(r[heads[i]], runs[best][heads[best]]) {
				best = i
			}
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}

// mergeRanked merges scored runs under the exec.RankedBefore contract:
// score descending, then global document ascending, then ordinal
// ascending.
func mergeRanked(runs [][]exec.ScoredNode) []exec.ScoredNode {
	return kwayMerge(runs, exec.RankedBefore)
}

// mergePhrase merges phrase-match runs into (document, position) order,
// the order the monolithic PhraseFinder emits.
func mergePhrase(runs [][]exec.PhraseMatch) []exec.PhraseMatch {
	return kwayMerge(runs, func(a, b exec.PhraseMatch) bool {
		if a.Doc != b.Doc {
			return a.Doc < b.Doc
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Node < b.Node
	})
}

// mergeTwigRefs merges twig-match runs by global document order. A
// document lives wholly in one shard, so comparing by document alone
// preserves each document's internal match order unchanged.
func mergeTwigRefs(runs [][]db.TwigRef) []db.TwigRef {
	return kwayMerge(runs, func(a, b db.TwigRef) bool {
		return a.Doc < b.Doc
	})
}

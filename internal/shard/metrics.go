package shard

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/storage"
)

// Sharded query evaluation records the same per-op metric families as
// internal/db (tix_query_seconds{op=...} and friends — see db's metrics
// documentation), plus per-shard worker instrumentation:
//
//	tix_shard_seconds{op=...,shard=...}       worker latency histogram
//	tix_shard_errors_total{op=...,shard=...}  worker failures
//	tix_shard_documents{shard=...}            documents resident per shard
//
// Fan-out ops (terms, phrase, twig) observe once at the facade with the
// workers' combined access stats; routed ops (query, explain) are
// observed by the owning segment, which shares the registry.
const (
	opTerms  = "terms"
	opPhrase = "phrase"
	opTwig   = "twig"
)

// ErrPanic marks errors produced by recovering a panic at the shard
// facade or worker boundary; the fleet layer treats them as replica
// faults eligible for retry on a healthy twin.
var ErrPanic = errors.New("shard: recovered panic")

// recoverPanic converts a panic inside the merge/facade path into a
// returned error, mirroring db.recoverPanic.
func recoverPanic(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	*errp = panicError(r)
}

// panicError classifies a recovered panic value: injected storage faults
// keep their typed identity, anything else becomes an ErrPanic.
func panicError(r interface{}) error {
	if ferr, ok := r.(error); ok && errors.Is(ferr, storage.ErrInjectedFault) {
		return fmt.Errorf("shard: storage fault: %w", ferr)
	}
	return fmt.Errorf("%w: %v", ErrPanic, r)
}

// observe records one fan-out operation at the facade: latency, outcome,
// result count, and the workers' combined store-access statistics.
func (s *DB) observe(op string, start time.Time, results int, stats storage.AccessStats, err error) {
	reg := s.MetricsRegistry()
	lbl := `{op="` + op + `"}`
	reg.Histogram("tix_query_seconds" + lbl).Observe(time.Since(start).Seconds())
	reg.Counter("tix_queries_total" + lbl).Inc()
	if err != nil {
		reg.Counter("tix_query_errors_total" + lbl).Inc()
		switch {
		case errors.Is(err, exec.ErrDeadlineExceeded):
			reg.Counter("tix_query_timeouts_total" + lbl).Inc()
		case errors.Is(err, exec.ErrCanceled):
			reg.Counter("tix_query_canceled_total" + lbl).Inc()
		case errors.Is(err, exec.ErrLimitExceeded):
			reg.Counter("tix_query_limit_exceeded_total" + lbl).Inc()
		case errors.Is(err, storage.ErrInjectedFault):
			reg.Counter("tix_query_faults_total" + lbl).Inc()
		case errors.Is(err, ErrPanic):
			reg.Counter("tix_query_panics_total" + lbl).Inc()
		}
		return
	}
	reg.Counter("tix_query_results_total" + lbl).Add(int64(results))
	reg.Counter("tix_access_node_reads_total" + lbl).Add(stats.NodeReads)
	reg.Counter("tix_access_page_reads_total" + lbl).Add(stats.PageReads)
	reg.Counter("tix_access_text_reads_total" + lbl).Add(stats.TextReads)
	reg.Counter("tix_access_nav_steps_total" + lbl).Add(stats.NavSteps)
}

package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/db"
)

// Sharded database file format (version 1):
//
//	magic    "TIXSHD1\n"
//	layout   strategy byte, uvarint shard count
//	docs     uvarint count; per doc (global order): name, uvarint shard
//	segments per shard: uvarint byte length, then a complete segment
//	         snapshot (db.Save output — TIXDB2 with block-compressed
//	         postings, or TIXDB1 from older writers; its own
//	         "TIXSUM1\n"+CRC32 trailer intact)
//	trailer  "TIXSUM1\n" + 4-byte little-endian IEEE CRC32 of every byte
//	         before the trailer
//
// Integrity is two-layer: the container trailer covers the whole file,
// and each embedded segment still carries (and re-verifies through
// db.Load) its own trailer, so a flipped bit is attributed to the shard
// it corrupted. Unlike the legacy single-store format, the container
// trailer is not optional.
const fileMagic = "TIXSHD1\n"

// sumMagic introduces the integrity trailer (shared with the embedded
// segment formats).
const sumMagic = "TIXSUM1\n"

// ErrCorruptSnapshot marks sharded-container integrity failures. Test
// with errors.Is; segment-level corruption surfaces as the wrapped
// db.ErrCorruptSnapshot instead.
var ErrCorruptSnapshot = errors.New("shard: corrupt sharded database file")

// maxShards bounds the shard count a container may declare — far above
// any real deployment, low enough that a corrupted count cannot drive
// allocations.
const maxShards = 1 << 16

// Save writes the sharded database — layout, document placement, and one
// complete db.Save snapshot per segment — to w, followed by the container
// integrity trailer. Segments are embedded verbatim, so the segment
// format (v2 block-compressed, or v1 when re-wrapping an old file) flows
// through unchanged.
func (s *DB) Save(w io.Writer) error {
	h := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(s.opts.Strategy)); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(s.segs)))
	writeUvarint(bw, uint64(len(s.docs)))
	for gid, ref := range s.docs {
		if ref.shard < 0 {
			return fmt.Errorf("shard: save: global id %d is a burned slot (drifted replica; re-sync from a healthy copy instead of saving)", gid)
		}
		writeString(bw, s.names[gid])
		writeUvarint(bw, uint64(ref.shard))
	}
	for _, seg := range s.segs {
		var buf bytes.Buffer
		if err := seg.Save(&buf); err != nil {
			return err
		}
		writeUvarint(bw, uint64(buf.Len()))
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tr [len(sumMagic) + 4]byte
	copy(tr[:], sumMagic)
	binary.LittleEndian.PutUint32(tr[len(sumMagic):], h.Sum32())
	_, err := w.Write(tr[:])
	return err
}

// SaveFile writes the sharded database to path.
func (s *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a sharded database written by Save, verifying the container
// trailer and every segment's own trailer, and rebuilding the global
// document numbering. The declared placement is cross-checked against
// each segment's actual contents.
func Load(r io.Reader) (*DB, error) {
	raw := bufio.NewReader(r)
	br := &crcReader{r: raw, h: crc32.NewIEEE()}
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("shard: load: bad magic %q", magic)
	}
	strat, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("shard: load: %w", err)
	}
	nShards, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if nShards < 1 || nShards > maxShards {
		return nil, fmt.Errorf("shard: load: implausible shard count %d: %w", nShards, ErrCorruptSnapshot)
	}
	nDocs, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if nDocs > 1<<31 {
		return nil, fmt.Errorf("shard: load: implausible document count %d: %w", nDocs, ErrCorruptSnapshot)
	}
	type placement struct {
		name  string
		shard int
	}
	placements := make([]placement, 0, min(nDocs, 1<<16))
	for i := uint64(0); i < nDocs; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		sh, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if sh >= nShards {
			return nil, fmt.Errorf("shard: load: document %q placed on shard %d of %d: %w",
				name, sh, nShards, ErrCorruptSnapshot)
		}
		placements = append(placements, placement{name: name, shard: int(sh)})
	}
	segs := make([]*db.DB, nShards)
	for i := range segs {
		segLen, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if segLen > 1<<31 {
			return nil, fmt.Errorf("shard: load: implausible segment length %d: %w", segLen, ErrCorruptSnapshot)
		}
		seg, err := db.Load(io.LimitReader(br, int64(segLen)))
		if err != nil {
			return nil, fmt.Errorf("shard: load: segment %d: %w", i, err)
		}
		segs[i] = seg
	}
	if err := verifyTrailer(raw, br.h); err != nil {
		return nil, err
	}

	// Rebuild the facade: segment options drive the shard options, and
	// the declared placement must match what each segment actually holds,
	// in order.
	var base db.Options
	if len(segs) > 0 {
		base = segs[0].Options()
	}
	s := New(Options{
		Shards:    int(nShards),
		Strategy:  Strategy(strat),
		Stemming:  base.Stemming,
		Stopwords: base.Stopwords,
	})
	s.segs = segs
	cursors := make([]int, nShards)
	for _, p := range placements {
		segDocs := segs[p.shard].Store().Docs()
		k := cursors[p.shard]
		if k >= len(segDocs) || segDocs[k].Name != p.name {
			return nil, fmt.Errorf("shard: load: placement of %q does not match segment %d contents: %w",
				p.name, p.shard, ErrCorruptSnapshot)
		}
		cursors[p.shard]++
		if _, dup := s.byName[p.name]; dup {
			return nil, fmt.Errorf("shard: load: duplicate document %q: %w", p.name, ErrCorruptSnapshot)
		}
		s.track(p.name, p.shard, segDocs[k].ID)
	}
	for i, seg := range segs {
		if cursors[i] != len(seg.Store().Docs()) {
			return nil, fmt.Errorf("shard: load: segment %d holds %d documents, placement lists %d: %w",
				i, len(seg.Store().Docs()), cursors[i], ErrCorruptSnapshot)
		}
	}
	return s, nil
}

// LoadFile reads a sharded database file written by SaveFile.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// IsShardedFile reports whether path begins with the sharded container
// magic (as opposed to a legacy single-store v1 snapshot).
func IsShardedFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("shard: %w", err)
	}
	defer f.Close()
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return false, nil // too short to be a sharded container
	}
	return string(magic) == fileMagic, nil
}

// OpenFile opens either snapshot format behind the sharded facade: a
// sharded container loads directly; a legacy v1 single-store snapshot is
// wrapped as one segment.
func OpenFile(path string) (*DB, error) {
	sharded, err := IsShardedFile(path)
	if err != nil {
		return nil, err
	}
	if sharded {
		return LoadFile(path)
	}
	d, err := db.LoadDBFile(path)
	if err != nil {
		return nil, err
	}
	return Wrap(d), nil
}

// Reshard redistributes the corpus across n shards under the given
// strategy, reusing the already-parsed document trees. Indexes are
// rebuilt lazily (or via Warm) on the new instance.
func (s *DB) Reshard(n int, strategy Strategy) (*DB, error) {
	out := New(Options{
		Shards:    n,
		Strategy:  strategy,
		Stemming:  s.opts.Stemming,
		Stopwords: s.opts.Stopwords,
		Metrics:   s.opts.Metrics,
		Limits:    s.opts.Limits,
	})
	for gid, ref := range s.docs {
		doc := s.segs[ref.shard].Store().Doc(ref.local)
		if doc == nil {
			return nil, fmt.Errorf("shard: reshard: document %q missing from segment %d", s.names[gid], ref.shard)
		}
		if err := out.LoadTree(doc.Name, doc.Root); err != nil {
			return nil, fmt.Errorf("shard: reshard: %w", err)
		}
	}
	return out, nil
}

// --- container primitives (mirroring the v1 segment format's) ---

// byteReader is the reading interface the loader consumes through.
type byteReader interface {
	io.Reader
	io.ByteReader
}

// crcReader hashes exactly the bytes its consumer reads; it wraps the
// buffered reader so readahead cannot pull trailer bytes into the
// payload hash.
type crcReader struct {
	r byteReader
	h hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.h.Write(p[:n])
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.h.Write([]byte{b})
	}
	return b, err
}

// verifyTrailer checks the container trailer after the payload has been
// fully consumed. The sharded format always writes a trailer, so a
// missing one is corruption, not legacy.
func verifyTrailer(br *bufio.Reader, h hash.Hash32) error {
	tr := make([]byte, len(sumMagic)+4)
	if n, err := io.ReadFull(br, tr); err != nil {
		return fmt.Errorf("shard: load: truncated integrity trailer (%d of %d bytes): %w", n, len(tr), ErrCorruptSnapshot)
	}
	if string(tr[:len(sumMagic)]) != sumMagic {
		return fmt.Errorf("shard: load: unexpected data after payload (missing %q trailer): %w", sumMagic, ErrCorruptSnapshot)
	}
	want := binary.LittleEndian.Uint32(tr[len(sumMagic):])
	if got := h.Sum32(); got != want {
		return fmt.Errorf("shard: load: checksum mismatch (file %08x, payload %08x): %w", want, got, ErrCorruptSnapshot)
	}
	if _, err := br.ReadByte(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("shard: load: data after integrity trailer: %w", ErrCorruptSnapshot)
	}
	return nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, _ = w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

func readUvarint(r io.ByteReader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("shard: load: %w", err)
	}
	return v, nil
}

func readString(r byteReader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	const maxString = 1 << 20
	if n > maxString {
		return "", fmt.Errorf("shard: load: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("shard: load: %w", err)
	}
	return string(buf), nil
}

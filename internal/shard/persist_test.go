package shard

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/db"
)

func TestShardedSaveLoadRoundTrip(t *testing.T) {
	names, roots := corpusDocs(t, 7, 42)
	for _, n := range []int{1, 3, 8} {
		s := newSharded(t, n, ByHash, names, roots)
		s.Warm()
		want, err := s.TermSearch([]string{"ctla", "ctlb"}, db.TermSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("shards=%d: save: %v", n, err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("shards=%d: load: %v", n, err)
		}
		if loaded.Shards() != n || loaded.Strategy() != ByHash {
			t.Fatalf("shards=%d: loaded layout = %d/%s", n, loaded.Shards(), loaded.Strategy())
		}
		if loaded.DocumentCount() != len(names) {
			t.Fatalf("shards=%d: loaded %d documents, want %d", n, loaded.DocumentCount(), len(names))
		}
		for gid, name := range names {
			if got := loaded.names[gid]; got != name {
				t.Fatalf("shards=%d: doc %d = %q, want %q", n, gid, got, name)
			}
		}
		got, err := loaded.TermSearch([]string{"ctla", "ctlb"}, db.TermSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameScored(t, "after round trip", got, want)
	}
}

func TestShardedLoadRejectsCorruption(t *testing.T) {
	names, roots := corpusDocs(t, 5, 9)
	s := newSharded(t, 3, ByHash, names, roots)
	s.Warm()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Any single flipped bit anywhere in the payload or trailer must be
	// rejected (sampled positions across the whole file).
	for _, pos := range []int{9, len(good) / 4, len(good) / 2, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x40
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Errorf("flipped bit at %d of %d accepted", pos, len(bad))
		}
	}
	// Truncations at the container level and inside a segment.
	for _, cut := range []int{4, len(good) / 2, len(good) - 3} {
		if _, err := Load(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d of %d accepted", cut, len(good))
		}
	}
	// Trailing garbage after the trailer.
	if _, err := Load(bytes.NewReader(append(append([]byte(nil), good...), 'x'))); !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("trailing garbage: err = %v, want ErrCorruptSnapshot", err)
	}
	// A legacy single-store snapshot is not a sharded container.
	var legacy bytes.Buffer
	if err := s.Segment(0).Save(&legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(legacy.Bytes())); err == nil {
		t.Error("legacy snapshot accepted by sharded Load")
	}
	// The intact file still loads (the corruption loop must not have
	// depended on shared state).
	if _, err := Load(bytes.NewReader(good)); err != nil {
		t.Fatalf("intact file rejected: %v", err)
	}
}

func TestOpenFileSniffsBothFormats(t *testing.T) {
	dir := t.TempDir()
	names, roots := corpusDocs(t, 5, 4)

	shardedPath := filepath.Join(dir, "sharded.tix")
	s := newSharded(t, 2, RoundRobin, names, roots)
	s.Warm()
	if err := s.SaveFile(shardedPath); err != nil {
		t.Fatal(err)
	}

	legacyPath := filepath.Join(dir, "legacy.tix")
	mono := newOracle(t, names, roots)
	mono.Index()
	if err := mono.SaveFile(legacyPath); err != nil {
		t.Fatal(err)
	}

	if ok, err := IsShardedFile(shardedPath); err != nil || !ok {
		t.Fatalf("IsShardedFile(sharded) = %v, %v", ok, err)
	}
	if ok, err := IsShardedFile(legacyPath); err != nil || ok {
		t.Fatalf("IsShardedFile(legacy) = %v, %v", ok, err)
	}

	want, err := mono.TermSearchContext(context.Background(), []string{"ctla", "ctlb"}, db.TermSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{shardedPath, legacyPath} {
		d, err := OpenFile(path)
		if err != nil {
			t.Fatalf("OpenFile(%s): %v", path, err)
		}
		got, err := d.TermSearch([]string{"ctla", "ctlb"}, db.TermSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameScored(t, "OpenFile "+filepath.Base(path), got, want)
	}

	// Sniffing tolerates short files (reports not-sharded, not an error).
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := IsShardedFile(short); err != nil || ok {
		t.Fatalf("IsShardedFile(short) = %v, %v", ok, err)
	}
}

func TestReshardPreservesResults(t *testing.T) {
	names, roots := corpusDocs(t, 6, 13)
	s := newSharded(t, 2, ByHash, names, roots)
	want, err := s.TermSearch([]string{"ctla", "ctlb"}, db.TermSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 8} {
		r, err := s.Reshard(n, RoundRobin)
		if err != nil {
			t.Fatalf("reshard to %d: %v", n, err)
		}
		if r.Shards() != n || r.Strategy() != RoundRobin {
			t.Fatalf("resharded layout = %d/%s", r.Shards(), r.Strategy())
		}
		if r.DocumentCount() != s.DocumentCount() {
			t.Fatalf("reshard to %d: %d documents, want %d", n, r.DocumentCount(), s.DocumentCount())
		}
		got, err := r.TermSearch([]string{"ctla", "ctlb"}, db.TermSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameScored(t, "after reshard", got, want)
	}
}

func TestWrapExposesMonolithicDB(t *testing.T) {
	names, roots := corpusDocs(t, 4, 2)
	mono := newOracle(t, names, roots)
	w := Wrap(mono)
	if w.Shards() != 1 || w.DocumentCount() != len(names) {
		t.Fatalf("wrap layout: shards=%d docs=%d", w.Shards(), w.DocumentCount())
	}
	want, err := mono.TermSearchContext(context.Background(), []string{"ctla"}, db.TermSearchOptions{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.TermSearch([]string{"ctla"}, db.TermSearchOptions{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	sameScored(t, "wrapped", got, want)
	// The facade rejects duplicate names just like db does.
	if err := w.LoadTree(names[0], roots[0]); err == nil {
		t.Error("duplicate load accepted")
	}
}

// Package shard partitions a corpus across N independent
// storage.Store+index.Index segments and executes the paper's access
// methods per shard in parallel behind a facade with the same surface as
// internal/db. Each document lives wholly in one segment, chosen by a
// stable hash of its name (or round-robin); because region encodings and
// node ordinals are per-document, an element's (doc, ord, score) identity
// is independent of which segment holds it, so a deterministic scored
// k-way merge (exec.RankedBefore: score desc, then document asc, then
// start ordinal asc — the same ordering contract as the single-store
// paths) reproduces the monolithic results element for element. The
// differential suite in equiv_test.go enforces exactly that.
//
// Top-k queries push the limit down: each shard keeps its own k best, and
// the merger re-thresholds to the global k — correct because any globally
// top-k element is necessarily in its own shard's top k. Resource budgets
// (exec.Guard) are shared: the workers' combined emissions and store
// accesses count against one limit, cancellation stops every shard within
// one check interval, and the first worker failure latches and aborts the
// rest.
package shard

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/rescache"
	"repro/internal/storage"
	"repro/internal/xmltree"
)

// Strategy selects how documents are assigned to shards.
type Strategy byte

const (
	// ByHash assigns a document by a stable FNV-1a hash of its name, so
	// the same corpus loads identically regardless of load order.
	ByHash Strategy = 0
	// RoundRobin assigns documents cyclically in load order — the choice
	// for benchmark corpora where balanced shard sizes matter more than
	// name stability.
	RoundRobin Strategy = 1
)

func (s Strategy) String() string {
	switch s {
	case ByHash:
		return "hash"
	case RoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("Strategy(%d)", byte(s))
}

// Options configures a sharded database.
type Options struct {
	// Shards is the number of segments (minimum 1).
	Shards int
	// Strategy selects the document partitioner (default ByHash).
	Strategy Strategy
	// Stemming, Stopwords, Metrics and Limits apply to every segment,
	// with the same meanings as db.Options.
	Stemming  bool
	Stopwords []string
	Metrics   *metrics.Registry
	// Limits is the default per-query resource budget. It is shared
	// across the shard workers of one query, not multiplied per shard.
	Limits exec.Limits
	// CacheBytes, when positive, attaches a generation-keyed result cache
	// to the facade (never to the segments; see cache.go).
	CacheBytes int64
}

// docRef locates one globally-numbered document inside its segment.
type docRef struct {
	shard int
	local storage.DocID
}

// DB is a sharded database: N independent db.DB segments behind the
// facade. Documents are numbered globally in load order; every result
// crossing the facade carries global document ids, so callers never see
// segment-local coordinates. Like db.DB, a sharded DB must be fully
// loaded (and ideally Warmed) before concurrent query use.
type DB struct {
	opts Options
	segs []*db.DB

	// mu guards the routing tables below. Loads and the mutation API
	// (Add/Update/Delete) write them; query paths translate segment-local
	// document ids to global ids under the read lock, so queries may run
	// concurrently with routed ingestion.
	mu       sync.RWMutex
	docs     []docRef                 // global DocID -> placement
	names    []string                 // global DocID -> document name
	byName   map[string]storage.DocID // document name -> global DocID
	globalOf [][]storage.DocID        // per shard: local DocID -> global
	next     int                      // round-robin cursor

	// cache, when set, memoizes merged facade results per generation
	// token (see cache.go).
	cache atomic.Pointer[rescache.Cache]
}

// New creates an empty sharded database. Options.Shards below 1 is
// treated as 1.
func New(opts Options) *DB {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	s := &DB{
		opts:     opts,
		segs:     make([]*db.DB, opts.Shards),
		byName:   map[string]storage.DocID{},
		globalOf: make([][]storage.DocID, opts.Shards),
	}
	for i := range s.segs {
		// Segments get no CacheBytes: caching happens once, at the facade,
		// after the merge and the global-id translation.
		s.segs[i] = db.New(db.Options{
			Stemming:  opts.Stemming,
			Stopwords: opts.Stopwords,
			Metrics:   opts.Metrics,
			Limits:    opts.Limits,
		})
	}
	if opts.CacheBytes > 0 {
		s.EnableResultCache(opts.CacheBytes)
	}
	return s
}

// Wrap adapts an existing monolithic database into a single-segment
// sharded facade — the bridge the cmds use for legacy snapshot files.
func Wrap(d *db.DB) *DB {
	o := d.Options()
	s := New(Options{
		Shards:    1,
		Stemming:  o.Stemming,
		Stopwords: o.Stopwords,
		Metrics:   o.Metrics,
		Limits:    o.Limits,
	})
	s.segs[0] = d
	s.mu.Lock()
	for _, doc := range d.Store().Docs() {
		s.track(doc.Name, 0, doc.ID)
	}
	s.mu.Unlock()
	return s
}

// Shards returns the number of segments.
func (s *DB) Shards() int { return len(s.segs) }

// Strategy returns the document partitioning strategy.
func (s *DB) Strategy() Strategy { return s.opts.Strategy }

// Segment exposes one underlying segment (read-mostly; for tests and
// persistence).
func (s *DB) Segment(i int) *db.DB { return s.segs[i] }

// MetricsRegistry returns the registry shard-level metrics record into.
func (s *DB) MetricsRegistry() *metrics.Registry {
	if s.opts.Metrics != nil {
		return s.opts.Metrics
	}
	return metrics.Default
}

// SetLimits replaces the default per-query resource budget (shared by the
// shard workers of one query).
func (s *DB) SetLimits(l exec.Limits) {
	s.opts.Limits = l
	for _, seg := range s.segs {
		seg.SetLimits(l)
	}
}

// limitsOr returns the per-call budget when set, else the default.
func (s *DB) limitsOr(limits exec.Limits) exec.Limits {
	if limits == (exec.Limits{}) {
		return s.opts.Limits
	}
	return limits
}

// SetFaults installs one fault injector on every segment store. The
// injector's access counter is shared, so the deterministic fault
// schedule spans shards.
func (s *DB) SetFaults(f *storage.FaultInjector) {
	for _, seg := range s.segs {
		seg.Store().SetFaults(f)
	}
}

// hashShard is the stable name-to-shard assignment of ByHash.
func hashShard(name string, n int) int {
	h := fnv.New32a()
	_, _ = io.WriteString(h, name)
	return int(h.Sum32() % uint32(n))
}

// pickShard chooses the segment for a new document; the round-robin
// cursor only advances once the load succeeds (see track).
func (s *DB) pickShard(name string) int {
	if s.opts.Strategy == RoundRobin {
		return s.next % len(s.segs)
	}
	return hashShard(name, len(s.segs))
}

// ShardOf returns the segment holding the named document.
func (s *DB) ShardOf(name string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	gid, ok := s.byName[name]
	if !ok {
		return 0, false
	}
	return s.docs[gid].shard, true
}

// globalIDs returns the current local-to-global id table of one segment.
// The table is append-only (stale tails for tombstoned documents are never
// referenced by results), so the captured slice header stays valid after
// the lock is released.
func (s *DB) globalIDs(i int) []storage.DocID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.globalOf[i]
}

// refOf resolves a global document id to its segment placement. Burned
// ids (dead slots appended by BurnDocID) resolve to no segment.
func (s *DB) refOf(doc storage.DocID) (docRef, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(doc) < 0 || int(doc) >= len(s.docs) || s.docs[doc].shard < 0 {
		return docRef{}, false
	}
	return s.docs[doc], true
}

// track records a successfully loaded document in the global numbering.
// Caller holds s.mu.
func (s *DB) track(name string, shard int, local storage.DocID) {
	gid := storage.DocID(len(s.docs))
	s.docs = append(s.docs, docRef{shard: shard, local: local})
	s.names = append(s.names, name)
	s.byName[name] = gid
	s.globalOf[shard] = append(s.globalOf[shard], gid)
	s.next++
	s.shardGauge(shard)
}

// shardGauge publishes one segment's live-document count. Caller holds
// s.mu (read or write).
func (s *DB) shardGauge(shard int) {
	s.MetricsRegistry().Gauge(fmt.Sprintf(`tix_shard_documents{shard="%d"}`, shard)).
		Set(int64(s.segs[shard].DocumentCount()))
}

// LoadTree loads an already-parsed tree under the given document name into
// the shard its name (or the round-robin cursor) selects.
func (s *DB) LoadTree(name string, root *xmltree.Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[name]; dup {
		return fmt.Errorf("shard: document %q already loaded", name)
	}
	i := s.pickShard(name)
	local := storage.DocID(s.segs[i].Store().NumDocs())
	if err := s.segs[i].LoadTree(name, root); err != nil {
		return err
	}
	s.track(name, i, local)
	return nil
}

// LoadString parses and loads an XML document.
func (s *DB) LoadString(name, src string) error {
	root, err := xmltree.ParseString(src)
	if err != nil {
		return fmt.Errorf("shard: load %s: %w", name, err)
	}
	return s.LoadTree(name, root)
}

// LoadReader parses and loads an XML document from r.
func (s *DB) LoadReader(name string, r io.Reader) error {
	root, err := xmltree.Parse(r)
	if err != nil {
		return fmt.Errorf("shard: load %s: %w", name, err)
	}
	return s.LoadTree(name, root)
}

// LoadFile parses and loads an XML file; the document name is the file's
// base name.
func (s *DB) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	defer f.Close()
	return s.LoadReader(filepath.Base(path), f)
}

// DocumentCount returns the number of live (non-deleted) documents across
// all segments without forcing index construction.
func (s *DB) DocumentCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byName)
}

// DocName returns the name of a globally-numbered document.
func (s *DB) DocName(doc storage.DocID) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(doc) < 0 || int(doc) >= len(s.names) {
		return ""
	}
	return s.names[doc]
}

// Warm builds every segment's inverted index, in parallel. Call before
// serving concurrent queries, so no query pays (or races on) the build.
func (s *DB) Warm() {
	var wg sync.WaitGroup
	for _, seg := range s.segs {
		wg.Add(1)
		go func(g *db.DB) {
			defer wg.Done()
			g.Warm()
		}(seg)
	}
	wg.Wait()
}

// Stats aggregates the segment statistics (forcing index construction).
// Terms counts the distinct terms of the union vocabulary, matching what
// a monolithic database over the same corpus would report.
func (s *DB) Stats() db.Stats {
	s.Warm()
	var st db.Stats
	vocab := map[string]bool{}
	for _, seg := range s.segs {
		sub := seg.Stats()
		st.Documents += sub.Documents
		st.Nodes += sub.Nodes
		st.Elements += sub.Elements
		st.Occurrences += sub.Occurrences
		for _, term := range seg.Index().TermsByFreq() {
			vocab[term] = true
		}
	}
	st.Terms = len(vocab)
	return st
}

// toGlobal rewrites segment-local document ids to global ids, in place.
// Within one shard the local order is a subsequence of the global order,
// so the rewrite preserves any (score, doc, ord) sorting.
func (s *DB) toGlobal(shard int, nodes []exec.ScoredNode) {
	ids := s.globalIDs(shard)
	for i := range nodes {
		nodes[i].Doc = ids[nodes[i].Doc]
	}
}

// Materialize returns the xmltree subtree for a result element (global
// document id).
func (s *DB) Materialize(doc storage.DocID, ord int32) *xmltree.Node {
	ref, ok := s.refOf(doc)
	if !ok {
		return nil
	}
	return s.segs[ref.shard].Materialize(ref.local, ord)
}

// NameOf returns the element tag name of a scored node (global document
// id).
func (s *DB) NameOf(n exec.ScoredNode) string {
	ref, ok := s.refOf(n.Doc)
	if !ok {
		return ""
	}
	return s.segs[ref.shard].NameOf(exec.ScoredNode{Doc: ref.local, Ord: n.Ord})
}

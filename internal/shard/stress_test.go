package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// These tests run the fan-out under the failure modes the production path
// must survive — injected storage faults, cancellation mid-scan, and
// concurrent callers — and are part of the -race suite (make stress).

func TestShardFaultSurfacesLatchedError(t *testing.T) {
	names, roots := corpusDocs(t, 6, 42)
	reg := metrics.NewRegistry()
	s := New(Options{Shards: 3, Metrics: reg})
	for i, name := range names {
		if err := s.LoadTree(name, roots[i]); err != nil {
			t.Fatal(err)
		}
	}
	s.Warm()
	s.SetLimits(exec.Limits{CheckEvery: 1})
	s.SetFaults(&storage.FaultInjector{FailEvery: 40})
	_, err := s.TermSearch([]string{"ctla", "ctlb"}, db.TermSearchOptions{})
	if err == nil {
		t.Fatal("fault injection produced no error")
	}
	// The latched first failure is the storage fault, never the
	// cancellation it triggered in the sibling workers.
	if !errors.Is(err, storage.ErrInjectedFault) {
		t.Fatalf("err = %v, want wrapped ErrInjectedFault", err)
	}
	if errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("err = %v: cancellation masked the root-cause fault", err)
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Errorf("err %q does not attribute the failing shard", err)
	}
	if got := reg.Counter(`tix_query_faults_total{op="terms"}`).Value(); got != 1 {
		t.Errorf("tix_query_faults_total = %d, want 1", got)
	}
	// At least one per-shard error counter incremented.
	total := int64(0)
	for i := 0; i < s.Shards(); i++ {
		total += reg.Counter(fmt.Sprintf(`tix_shard_errors_total{op="terms",shard="%d"}`, i)).Value()
	}
	if total == 0 {
		t.Error("no per-shard error counter incremented")
	}

	// Disarm: the database keeps serving.
	s.SetFaults(nil)
	res, err := s.TermSearch([]string{"ctla"}, db.TermSearchOptions{TopK: 5})
	if err != nil || len(res) == 0 {
		t.Fatalf("after disarm: results=%d err=%v", len(res), err)
	}
}

func TestShardCancellationStopsAllWorkers(t *testing.T) {
	names, roots := corpusDocs(t, 6, 43)
	s := newSharded(t, 3, ByHash, names, roots)
	s.Warm()
	s.SetLimits(exec.Limits{CheckEvery: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.TermSearchContext(ctx, []string{"ctla", "ctlb"}, db.TermSearchOptions{}); !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("pre-canceled context: err = %v, want ErrCanceled", err)
	}
	if _, err := s.PhraseSearchContext(ctx, []string{"ctla", "ctlb"}); !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("phrase: err = %v, want ErrCanceled", err)
	}
	if _, err := s.TwigRefsContext(ctx, exec.Twig("article", exec.Twig("p"))); !errors.Is(err, exec.ErrCanceled) {
		t.Fatalf("twig: err = %v, want ErrCanceled", err)
	}
}

func TestShardSharedAccessBudget(t *testing.T) {
	names, roots := corpusDocs(t, 6, 44)
	s := newSharded(t, 3, ByHash, names, roots)
	s.Warm()
	// The budget is shared across workers: a per-shard budget of 30 would
	// pass, a shared one must trip.
	s.SetLimits(exec.Limits{MaxAccesses: 30, CheckEvery: 1})
	_, err := s.TermSearch([]string{"ctla", "ctlb"}, db.TermSearchOptions{})
	if !errors.Is(err, exec.ErrLimitExceeded) {
		t.Fatalf("err = %v, want ErrLimitExceeded", err)
	}
	var le *exec.LimitError
	if !errors.As(err, &le) || le.Resource != "store accesses" {
		t.Fatalf("err = %v, want a store-accesses LimitError", err)
	}
}

// TestShardConcurrentStress hammers one sharded database from many
// goroutines mixing successful queries, cancellations, and deadline
// expiries, then verifies no worker goroutines leaked. Run under -race
// this also checks the fan-out's memory visibility.
func TestShardConcurrentStress(t *testing.T) {
	names, roots := corpusDocs(t, 8, 45)
	s := newSharded(t, 4, ByHash, names, roots)
	s.Warm()
	s.SetLimits(exec.Limits{CheckEvery: 8})

	baseline := runtime.NumGoroutine()
	const workers = 8
	const iters = 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0:
					if _, err := s.TermSearch([]string{"ctla", "ctlb"}, db.TermSearchOptions{TopK: 10}); err != nil {
						t.Errorf("worker %d: terms: %v", w, err)
						return
					}
				case 1:
					if _, err := s.PhraseSearch([]string{"ctla", "ctlb"}); err != nil {
						t.Errorf("worker %d: phrase: %v", w, err)
						return
					}
				case 2:
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					if _, err := s.TermSearchContext(ctx, []string{"ctla"}, db.TermSearchOptions{}); !errors.Is(err, exec.ErrCanceled) {
						t.Errorf("worker %d: canceled search err = %v", w, err)
						return
					}
				case 3:
					opts := db.TermSearchOptions{Limits: exec.Limits{Timeout: time.Nanosecond, CheckEvery: 1}}
					if _, err := s.TermSearchContext(context.Background(), []string{"ctla", "ctlb"}, opts); !errors.Is(err, exec.ErrDeadlineExceeded) {
						t.Errorf("worker %d: deadline err = %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Shard workers are joined before each call returns; give the runtime
	// a moment to retire exiting goroutines, then require the count back
	// at (or below) the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package storage

import "repro/internal/xmltree"

// Accessor is the accounting access path to a Store. All physical operators
// in internal/exec read node records through an Accessor so experiments can
// report how many store touches each access method performed. An Accessor is
// cheap; create one per operator or per query.
//
// Page accounting charges a page read whenever an access lands on a
// different simulated page (PageSize records) than the previous access
// through this Accessor — sequential scans are cheap, scattered navigation
// is not, mirroring the disk behaviour that shapes the paper's baseline
// costs.
type Accessor struct {
	store *Store
	docs  []*Document // document table snapshot, stable under concurrent loads
	Stats AccessStats
	// Budget, when non-nil, additionally meters every node-record fetch
	// into a query-wide shared counter (see AccessBudget); exec.Guard
	// enforces the MaxAccesses limit against it.
	Budget *AccessBudget

	faults *FaultInjector
}

// NewAccessor returns an accessor over s. It inherits the store's fault
// injector, if one is installed, and snapshots the document table so
// concurrent ingestion cannot move it mid-query.
func NewAccessor(s *Store) *Accessor {
	return &Accessor{store: s, docs: s.Docs(), faults: s.Faults()}
}

// Store returns the underlying store.
func (a *Accessor) Store() *Store { return a.store }

func (a *Accessor) charge(doc DocID, ord int32) {
	a.Stats.NodeReads++
	page := int64(doc)<<32 | int64(ord/PageSize)
	if !a.Stats.lastPageOK || a.Stats.lastPage != page {
		a.Stats.PageReads++
		a.Stats.lastPage = page
		a.Stats.lastPageOK = true
	}
	if a.Budget != nil {
		a.Budget.add(1)
	}
	if a.faults != nil {
		a.faults.onAccess()
	}
}

// Node fetches the node record at (doc, ord), charging one node read.
func (a *Accessor) Node(doc DocID, ord int32) *NodeRec {
	a.charge(doc, ord)
	return &a.docs[doc].Nodes[ord]
}

// Parent returns the parent ordinal of (doc, ord), or NoNode.
func (a *Accessor) Parent(doc DocID, ord int32) int32 {
	return a.Node(doc, ord).Parent
}

// Ancestors returns the ancestor chain of (doc, ord) from the parent up to
// the root, charging one node read per step.
func (a *Accessor) Ancestors(doc DocID, ord int32) []int32 {
	var out []int32
	for p := a.Node(doc, ord).Parent; p != NoNode; {
		out = append(out, p)
		p = a.Node(doc, p).Parent
	}
	return out
}

// ChildCountNav returns the number of children of (doc, ord) by navigating
// the child/sibling chain — the data access the plain TermJoin performs for
// the complex scoring function. Enhanced TermJoin uses ChildCountIndexed
// instead.
func (a *Accessor) ChildCountNav(doc DocID, ord int32) int32 {
	n := int32(0)
	for c := a.Node(doc, ord).FirstChild; c != NoNode; {
		n++
		a.Stats.NavSteps++
		c = a.Node(doc, c).NextSibling
	}
	return n
}

// ChildCountIndexed returns the number of children of (doc, ord) from the
// child-count index in O(1) — the index structure Enhanced TermJoin relies
// on. Along with the count, the parent's ordinal is returned, matching the
// paper's description ("it uses an index structure to get a parent of a
// given node; along with the parent information, the number of children of
// this parent is returned").
func (a *Accessor) ChildCountIndexed(doc DocID, ord int32) (parent, count int32) {
	rec := a.Node(doc, ord)
	return rec.Parent, rec.ChildCount
}

// Text returns the text payload of a text node, charging a text read.
func (a *Accessor) Text(doc DocID, ord int32) string {
	a.Stats.TextReads++
	return a.Node(doc, ord).Text
}

// SubtreeText concatenates the text of every text node in the subtree of
// (doc, ord) in document order, charging per record scanned.
func (a *Accessor) SubtreeText(doc DocID, ord int32) string {
	d := a.docs[doc]
	end := d.SubtreeEnd(ord)
	var out []byte
	for i := ord; i < end; i++ {
		rec := a.Node(doc, i)
		if rec.Kind == xmltree.Text {
			a.Stats.TextReads++
			if len(out) > 0 {
				out = append(out, ' ')
			}
			out = append(out, rec.Text...)
		}
	}
	return string(out)
}

// Materialize returns the xmltree subtree rooted at (doc, ord), for handing
// results back to the user. It charges one node read per subtree node.
func (a *Accessor) Materialize(doc DocID, ord int32) *xmltree.Node {
	d := a.docs[doc]
	end := d.SubtreeEnd(ord)
	for i := ord; i < end; i++ {
		a.charge(doc, i)
	}
	return d.TreeNode(ord)
}

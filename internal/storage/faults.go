package storage

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// AccessBudget is a shared store-access meter. Every Accessor attached to
// the same budget adds its node-record fetches to one atomic counter, so a
// query that fans out across goroutines (ParallelTermJoin workers) is
// metered as a whole. Enforcement lives in exec.Guard, which compares
// Used() against the query's MaxAccesses limit at every cooperative check;
// the budget itself only counts.
type AccessBudget struct {
	used atomic.Int64
}

// Used returns the number of accesses charged so far.
func (b *AccessBudget) Used() int64 { return b.used.Load() }

// add charges n accesses. Called from Accessor.charge.
func (b *AccessBudget) add(n int64) { b.used.Add(n) }

// ErrInjectedFault is the sentinel every injected storage fault unwraps
// to; callers classify with errors.Is(err, storage.ErrInjectedFault).
var ErrInjectedFault = errors.New("storage: injected fault")

// FaultError is the typed error surfaced when a FaultInjector fires: the
// store pretends the backing page read failed. Access methods read the
// store through error-free interfaces, so the injector raises the fault as
// a panic carrying this error; the db entry points recover it back into an
// ordinary returned error (see db.recoverPanic).
type FaultError struct {
	// Access is the 1-based global access count at which the fault fired.
	Access int64
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("storage: injected fault at access %d", e.Access)
}

// Unwrap makes errors.Is(err, ErrInjectedFault) true.
func (e *FaultError) Unwrap() error { return ErrInjectedFault }

// FaultInjector deterministically injects storage faults and latency, for
// exercising the engine's degradation paths under test and in staging. All
// decisions are derived from a global access counter plus Seed, so a given
// configuration fails the exact same accesses on every run.
//
// A FaultInjector is installed store-wide with Store.SetFaults; every
// Accessor created afterwards consults it on each node-record fetch. It is
// a test/staging facility: FailEvery panics with *FaultError, which only
// the db facade's entry points translate back into errors — code that
// drives exec operators directly will crash, by design.
type FaultInjector struct {
	// FailEvery makes every k-th store access fail (0 disables).
	FailEvery int64
	// Latency is added to every LatencyEvery-th access (both must be set;
	// LatencyEvery of 1 delays every access).
	Latency      time.Duration
	LatencyEvery int64
	// Seed offsets which access within each FailEvery/LatencyEvery cycle
	// fires, so different seeds fault different accesses deterministically.
	Seed int64

	n atomic.Int64
}

// Accesses returns the number of accesses observed so far.
func (f *FaultInjector) Accesses() int64 { return f.n.Load() }

// onAccess is called by Accessor.charge for every node-record fetch.
func (f *FaultInjector) onAccess() {
	n := f.n.Add(1)
	if f.LatencyEvery > 0 && f.Latency > 0 && (n+f.Seed)%f.LatencyEvery == 0 {
		//tixlint:ignore sleephygiene the injected latency IS the feature: a deterministic, uncancellable stall is exactly what resilience drills simulate
		time.Sleep(f.Latency)
	}
	if f.FailEvery > 0 && (n+f.Seed)%f.FailEvery == 0 {
		panic(&FaultError{Access: n})
	}
}

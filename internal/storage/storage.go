// Package storage implements the node store that plays the role of the
// Timber back-end in the paper's experiments: a column-oriented, document-
// order array of node records per document, with the auxiliary indexes the
// access methods in internal/exec need — parent pointers, a child-count
// index (for Enhanced TermJoin), per-tag element extents (for structural
// joins and the Comp2 baseline), and subtree/text retrieval.
//
// The store is in-memory, but every retrieval goes through an access-
// accounting layer that counts node and page touches. The proposed access
// methods (TermJoin, PhraseFinder, Pick) touch the store rarely; the
// composite baselines touch it per intermediate result, which is what
// produces the cost separation the paper reports.
//
// The store is append-only and internally synchronized: documents may be
// added (and names released for re-add) concurrently with readers, which
// is what live ingestion requires. Individual Document records are
// immutable once loaded, so holding a *Document across mutations is safe.
// Deleted documents keep their slots — the index layer hides them behind
// tombstones — and are only reclaimed by a full rebuild.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/xmltree"
)

// DocID identifies a loaded document within a Store.
type DocID int32

// TagID is an interned element tag.
type TagID int32

// NoNode marks an absent node reference (e.g. the root's parent).
const NoNode int32 = -1

// NodeRec is the flat record stored for every node of a document. Records
// are stored in document (preorder) order, so a node's ordinal is also its
// index and Start keys are strictly increasing with the ordinal.
type NodeRec struct {
	Start uint32
	End   uint32
	Level uint16
	Kind  xmltree.Kind
	Tag   TagID  // valid for element nodes
	Text  string // valid for text nodes

	Parent      int32 // ordinal of the parent, NoNode for the root
	FirstChild  int32 // ordinal of the first child, NoNode if leaf
	NextSibling int32 // ordinal of the next sibling, NoNode if last
	ChildCount  int32 // number of children (elements and text nodes)
}

// Document is one loaded XML document.
type Document struct {
	ID    DocID
	Name  string
	Root  *xmltree.Node // retained for result materialization
	Nodes []NodeRec     // document order; index == ordinal

	tagExtent map[TagID][]int32 // element ordinals per tag, document order
	elements  []int32           // all element ordinals, document order
	ordOnce   sync.Once         // builds ordToNode exactly once
	ordToNode []*xmltree.Node   // lazy ordinal → tree node map
}

// TagDict interns element tag names store-wide. It is safe for concurrent
// use; assigned ids are stable for the dictionary's lifetime.
type TagDict struct {
	mu     sync.RWMutex
	byName map[string]TagID
	names  []string
}

// NewTagDict returns an empty dictionary.
func NewTagDict() *TagDict {
	return &TagDict{byName: make(map[string]TagID)}
}

// Intern returns the TagID for name, assigning a fresh one if needed.
func (d *TagDict) Intern(name string) TagID {
	d.mu.RLock()
	id, ok := d.byName[name]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byName[name]; ok {
		return id
	}
	id = TagID(len(d.names))
	d.byName[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the TagID for name and whether it is known.
func (d *TagDict) Lookup(name string) (TagID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the tag name for id.
func (d *TagDict) Name(id TagID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(d.names) {
		return fmt.Sprintf("tag#%d", id)
	}
	return d.names[id]
}

// Len returns the number of interned tags.
func (d *TagDict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.names)
}

// AccessStats counts store touches. The baselines in internal/exec report
// these so experiments can show *why* they are slow, not only that they are.
type AccessStats struct {
	NodeReads  int64 // individual node record fetches
	PageReads  int64 // distinct-page transitions (sequential locality is cheap)
	TextReads  int64 // text payload fetches
	NavSteps   int64 // child/sibling navigation steps
	lastPage   int64
	lastPageOK bool
}

// Reset zeroes the counters.
func (s *AccessStats) Reset() { *s = AccessStats{} }

// Add accumulates o into s.
func (s *AccessStats) Add(o AccessStats) {
	s.NodeReads += o.NodeReads
	s.PageReads += o.PageReads
	s.TextReads += o.TextReads
	s.NavSteps += o.NavSteps
}

// String formats the counters compactly.
func (s *AccessStats) String() string {
	return fmt.Sprintf("nodes=%d pages=%d texts=%d nav=%d", s.NodeReads, s.PageReads, s.TextReads, s.NavSteps)
}

// PageSize is the number of node records per simulated page for page-touch
// accounting.
const PageSize = 128

// Store holds a set of loaded documents and the shared tag dictionary.
type Store struct {
	Tags *TagDict

	mu     sync.RWMutex
	docs   []*Document
	byName map[string]DocID
	faults *FaultInjector
}

// SetFaults installs a fault injector consulted by every Accessor created
// afterwards (nil uninstalls). Install before serving; existing accessors
// keep the injector they were created with.
func (s *Store) SetFaults(f *FaultInjector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = f
}

// Faults returns the installed fault injector, or nil.
func (s *Store) Faults() *FaultInjector {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.faults
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{Tags: NewTagDict(), byName: make(map[string]DocID)}
}

// AddTree loads a numbered xmltree into the store under the given document
// name and returns its DocID. The tree must already be numbered (Parse does
// this); AddTree renumbers defensively if the root looks unnumbered.
//
// Document ids are allocated monotonically in load order and never reused:
// a released name re-adds under a fresh id, which is what keeps live-index
// segments document-disjoint. The flattening work runs outside the store
// lock; only the final publication is serialized.
func (s *Store) AddTree(name string, root *xmltree.Node) (DocID, error) {
	s.mu.RLock()
	_, dup := s.byName[name]
	s.mu.RUnlock()
	if dup {
		return 0, fmt.Errorf("storage: document %q already loaded", name)
	}
	if root.End == 0 && len(root.Children) > 0 {
		xmltree.Number(root)
	}
	doc := &Document{
		Name:      name,
		Root:      root,
		tagExtent: make(map[TagID][]int32),
	}
	nodes := xmltree.Nodes(root)
	doc.Nodes = make([]NodeRec, len(nodes))
	ordOf := make(map[*xmltree.Node]int32, len(nodes))
	for i, n := range nodes {
		if n.Ord != int32(i) {
			return 0, fmt.Errorf("storage: node ordinals not preorder-contiguous (got %d at %d); tree not numbered?", n.Ord, i)
		}
		ordOf[n] = int32(i)
	}
	for i, n := range nodes {
		rec := NodeRec{
			Start:       n.Start,
			End:         n.End,
			Level:       n.Level,
			Kind:        n.Kind,
			Parent:      NoNode,
			FirstChild:  NoNode,
			NextSibling: NoNode,
			ChildCount:  int32(len(n.Children)),
		}
		if n.Parent != nil {
			rec.Parent = ordOf[n.Parent]
		}
		if len(n.Children) > 0 {
			rec.FirstChild = ordOf[n.Children[0]]
		}
		if n.Kind == xmltree.Element {
			rec.Tag = s.Tags.Intern(n.Tag)
		} else {
			rec.Text = n.Text
		}
		doc.Nodes[i] = rec
	}
	// Next-sibling links.
	for _, n := range nodes {
		for ci := 0; ci+1 < len(n.Children); ci++ {
			doc.Nodes[ordOf[n.Children[ci]]].NextSibling = ordOf[n.Children[ci+1]]
		}
	}
	// Tag extents.
	for i := range doc.Nodes {
		if doc.Nodes[i].Kind == xmltree.Element {
			tid := doc.Nodes[i].Tag
			doc.tagExtent[tid] = append(doc.tagExtent[tid], int32(i))
			doc.elements = append(doc.elements, int32(i))
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[name]; dup {
		return 0, fmt.Errorf("storage: document %q already loaded", name)
	}
	id := DocID(len(s.docs))
	doc.ID = id
	s.docs = append(s.docs, doc)
	s.byName[name] = id
	return id, nil
}

// ReleaseName forgets the name→id binding of a deleted document so the
// name can be loaded again (under a fresh id). The document record itself
// stays in place; the index layer is responsible for hiding it.
func (s *Store) ReleaseName(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byName, name)
}

// Doc returns the document with the given id, or nil.
func (s *Store) Doc(id DocID) *Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(s.docs) {
		return nil
	}
	return s.docs[id]
}

// DocByName returns the document loaded under name, or nil.
func (s *Store) DocByName(name string) *Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.byName[name]
	if !ok {
		return nil
	}
	return s.docs[id]
}

// Docs returns a copy of the document table in load order. The *Document
// records are shared (they are immutable once loaded) but the slice is the
// caller's: reordering or truncating it cannot corrupt the store's table,
// and it stays stable while concurrent loads append.
func (s *Store) Docs() []*Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Document, len(s.docs))
	copy(out, s.docs)
	return out
}

// DocsPrefix returns a copy of the first n documents in load order (all of
// them when n exceeds the table) — the stable view a snapshot taken at
// document-count n reads through.
func (s *Store) DocsPrefix(n int) []*Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n > len(s.docs) {
		n = len(s.docs)
	}
	if n < 0 {
		n = 0
	}
	out := make([]*Document, n)
	copy(out, s.docs[:n])
	return out
}

// NumDocs returns the number of loaded documents (including any hidden
// behind index-layer tombstones).
func (s *Store) NumDocs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// NumNodes returns the total number of node records across all documents.
func (s *Store) NumNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, d := range s.docs {
		n += len(d.Nodes)
	}
	return n
}

// TagExtent returns the ordinals of all elements with the given tag in doc,
// in document order. The returned slice must not be modified.
//
//tixlint:ignore aliasret Document is immutable after construction and TagExtent sits on the per-query hot path; callers hold a read-only view by documented contract
func (d *Document) TagExtent(tag TagID) []int32 { return d.tagExtent[tag] }

// Elements returns the ordinals of all element nodes in document order. The
// returned slice must not be modified.
//
//tixlint:ignore aliasret Document is immutable after construction and Elements backs every structural join; copying per query would dominate operator cost
func (d *Document) Elements() []int32 { return d.elements }

// OrdByStart returns the ordinal of the node whose Start equals start, or
// NoNode. Because ordinals are preorder, Start keys are strictly increasing
// and a binary search suffices.
func (d *Document) OrdByStart(start uint32) int32 {
	i := sort.Search(len(d.Nodes), func(i int) bool { return d.Nodes[i].Start >= start })
	if i < len(d.Nodes) && d.Nodes[i].Start == start {
		return int32(i)
	}
	return NoNode
}

// SubtreeEnd returns the ordinal one past the last descendant of ord; the
// subtree of ord is the contiguous ordinal range [ord, SubtreeEnd).
func (d *Document) SubtreeEnd(ord int32) int32 {
	end := d.Nodes[ord].End
	i := sort.Search(len(d.Nodes), func(i int) bool { return d.Nodes[i].Start > end })
	return int32(i)
}

// TreeNode returns the xmltree node with the given ordinal (for result
// materialization). It costs a subtree walk on first use per document, after
// which lookups are O(1). Safe for concurrent use: the lazy map is built
// exactly once.
func (d *Document) TreeNode(ord int32) *xmltree.Node {
	d.ordOnce.Do(func() {
		d.ordToNode = make([]*xmltree.Node, len(d.Nodes))
		d.Root.Walk(func(n *xmltree.Node) bool {
			d.ordToNode[n.Ord] = n
			return true
		})
	})
	if int(ord) < 0 || int(ord) >= len(d.ordToNode) {
		return nil
	}
	return d.ordToNode[ord]
}

package storage

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

const articleDoc = `
<article>
  <article-title>Internet Technologies</article-title>
  <author id="first"><fname>Jane</fname><sname>Doe</sname></author>
  <chapter><ct>Caching and Replication</ct></chapter>
  <chapter><ct>Streaming Video</ct></chapter>
  <chapter>
    <ct>Search and Retrieval</ct>
    <section><section-title>Search Engine Basics</section-title></section>
    <section><section-title>Information Retrieval Techniques</section-title></section>
    <section>
      <section-title>Examples</section-title>
      <p>Here are some IR based search engines:</p>
      <p>search engine NewsInEssence uses a new information retrieval technology</p>
      <p>semantic information retrieval techniques are also being incorporated into some search engines</p>
    </section>
  </chapter>
</article>`

func loadArticle(t testing.TB) (*Store, *Document) {
	t.Helper()
	s := NewStore()
	root := mustParse(articleDoc)
	id, err := s.AddTree("articles.xml", root)
	if err != nil {
		t.Fatalf("AddTree: %v", err)
	}
	return s, s.Doc(id)
}

func TestAddTreeAndLookup(t *testing.T) {
	s, doc := loadArticle(t)
	if doc == nil || doc.Name != "articles.xml" {
		t.Fatalf("doc lookup failed")
	}
	if s.DocByName("articles.xml") != doc {
		t.Errorf("DocByName mismatch")
	}
	if s.DocByName("missing.xml") != nil {
		t.Errorf("DocByName(missing) should be nil")
	}
	if s.NumNodes() != len(doc.Nodes) {
		t.Errorf("NumNodes mismatch")
	}
	if _, err := s.AddTree("articles.xml", mustParse("<a/>")); err == nil {
		t.Errorf("duplicate name should error")
	}
}

func TestRecordsMirrorTree(t *testing.T) {
	_, doc := loadArticle(t)
	nodes := xmltree.Nodes(doc.Root)
	if len(nodes) != len(doc.Nodes) {
		t.Fatalf("record count %d != tree size %d", len(doc.Nodes), len(nodes))
	}
	for i, n := range nodes {
		rec := doc.Nodes[i]
		if rec.Start != n.Start || rec.End != n.End || rec.Level != n.Level || rec.Kind != n.Kind {
			t.Fatalf("record %d does not mirror node %v", i, n)
		}
		if n.Parent == nil {
			if rec.Parent != NoNode {
				t.Fatalf("root parent should be NoNode")
			}
		} else if rec.Parent != n.Parent.Ord {
			t.Fatalf("record %d parent %d != %d", i, rec.Parent, n.Parent.Ord)
		}
		if rec.ChildCount != int32(len(n.Children)) {
			t.Fatalf("record %d childcount %d != %d", i, rec.ChildCount, len(n.Children))
		}
	}
}

func TestTagExtent(t *testing.T) {
	s, doc := loadArticle(t)
	tid, ok := s.Tags.Lookup("chapter")
	if !ok {
		t.Fatalf("chapter tag not interned")
	}
	ext := doc.TagExtent(tid)
	if len(ext) != 3 {
		t.Fatalf("chapter extent = %d, want 3", len(ext))
	}
	for i := 1; i < len(ext); i++ {
		if doc.Nodes[ext[i]].Start <= doc.Nodes[ext[i-1]].Start {
			t.Errorf("extent not in document order")
		}
	}
	if s.Tags.Name(tid) != "chapter" {
		t.Errorf("tag name round trip failed")
	}
	var elems int
	for i := range doc.Nodes {
		if doc.Nodes[i].Kind == xmltree.Element {
			elems++
		}
	}
	if len(doc.Elements()) != elems {
		t.Errorf("Elements() = %d, want %d", len(doc.Elements()), elems)
	}
}

func TestOrdByStartAndSubtreeEnd(t *testing.T) {
	_, doc := loadArticle(t)
	for i := range doc.Nodes {
		if got := doc.OrdByStart(doc.Nodes[i].Start); got != int32(i) {
			t.Fatalf("OrdByStart(%d) = %d, want %d", doc.Nodes[i].Start, got, i)
		}
	}
	if doc.OrdByStart(0xFFFFFFF0) != NoNode {
		t.Errorf("OrdByStart(miss) should be NoNode")
	}
	// Subtree of the root covers everything.
	if got := doc.SubtreeEnd(0); got != int32(len(doc.Nodes)) {
		t.Errorf("SubtreeEnd(root) = %d, want %d", got, len(doc.Nodes))
	}
	// Subtree range equals the set of descendants by region test.
	for ord := range doc.Nodes {
		end := doc.SubtreeEnd(int32(ord))
		for j := range doc.Nodes {
			inRange := int32(j) >= int32(ord) && int32(j) < end
			isDesc := j == ord ||
				(doc.Nodes[ord].Start < doc.Nodes[j].Start && doc.Nodes[j].End <= doc.Nodes[ord].End)
			if inRange != isDesc {
				t.Fatalf("subtree range wrong for ord %d at %d", ord, j)
			}
		}
	}
}

func TestAccessorAncestors(t *testing.T) {
	s, doc := loadArticle(t)
	a := NewAccessor(s)
	// Find the second <p>'s text node.
	var pOrd int32 = NoNode
	tid, _ := s.Tags.Lookup("p")
	pOrd = doc.TagExtent(tid)[1]
	anc := a.Ancestors(doc.ID, pOrd)
	wantTags := []string{"section", "chapter", "article"}
	if len(anc) != len(wantTags) {
		t.Fatalf("ancestors = %d, want %d", len(anc), len(wantTags))
	}
	for i, ord := range anc {
		if got := s.Tags.Name(doc.Nodes[ord].Tag); got != wantTags[i] {
			t.Errorf("ancestor %d = %s, want %s", i, got, wantTags[i])
		}
	}
	if a.Stats.NodeReads == 0 {
		t.Errorf("accessor did not count reads")
	}
}

func TestChildCountNavVsIndexed(t *testing.T) {
	s, doc := loadArticle(t)
	nav := NewAccessor(s)
	idx := NewAccessor(s)
	for ord := range doc.Nodes {
		n := nav.ChildCountNav(doc.ID, int32(ord))
		_, c := idx.ChildCountIndexed(doc.ID, int32(ord))
		if n != c {
			t.Fatalf("child counts disagree at %d: nav %d idx %d", ord, n, c)
		}
	}
	if nav.Stats.NodeReads <= idx.Stats.NodeReads {
		t.Errorf("navigation should cost more node reads than the index (%d vs %d)",
			nav.Stats.NodeReads, idx.Stats.NodeReads)
	}
	if nav.Stats.NavSteps == 0 {
		t.Errorf("navigation steps not counted")
	}
}

func TestSubtreeText(t *testing.T) {
	s, doc := loadArticle(t)
	a := NewAccessor(s)
	got := a.SubtreeText(doc.ID, 0)
	want := doc.Root.AllText()
	if got != want {
		t.Errorf("SubtreeText(root) = %q, want %q", got, want)
	}
	tid, _ := s.Tags.Lookup("sname")
	ord := doc.TagExtent(tid)[0]
	if got := a.SubtreeText(doc.ID, ord); got != "Doe" {
		t.Errorf("SubtreeText(sname) = %q", got)
	}
	if a.Stats.TextReads == 0 {
		t.Errorf("text reads not counted")
	}
}

func TestMaterialize(t *testing.T) {
	s, doc := loadArticle(t)
	a := NewAccessor(s)
	tid, _ := s.Tags.Lookup("section")
	ord := doc.TagExtent(tid)[2]
	n := a.Materialize(doc.ID, ord)
	if n == nil || n.Tag != "section" {
		t.Fatalf("Materialize returned %v", n)
	}
	if len(n.FindTag("p")) != 3 {
		t.Errorf("materialized subtree missing paragraphs")
	}
	if a.Stats.NodeReads == 0 {
		t.Errorf("materialize should charge reads")
	}
}

func TestPageAccounting(t *testing.T) {
	s := NewStore()
	// Build a wide flat tree spanning multiple pages.
	root := xmltree.NewElement("root")
	for i := 0; i < PageSize*3; i++ {
		c := xmltree.NewElement("c")
		c.AppendChild(xmltree.NewText("w"))
		root.AppendChild(c)
	}
	xmltree.Number(root)
	id, err := s.AddTree("wide.xml", root)
	if err != nil {
		t.Fatal(err)
	}
	seq := NewAccessor(s)
	n := len(s.Doc(id).Nodes)
	for i := 0; i < n; i++ {
		seq.Node(id, int32(i))
	}
	scattered := NewAccessor(s)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		scattered.Node(id, int32(rng.Intn(n)))
	}
	if seq.Stats.PageReads >= scattered.Stats.PageReads {
		t.Errorf("sequential scan (%d pages) should touch fewer pages than random access (%d)",
			seq.Stats.PageReads, scattered.Stats.PageReads)
	}
	var sum AccessStats
	sum.Add(seq.Stats)
	sum.Add(scattered.Stats)
	if sum.NodeReads != seq.Stats.NodeReads+scattered.Stats.NodeReads {
		t.Errorf("Add miscounts")
	}
	if !strings.Contains(sum.String(), "nodes=") {
		t.Errorf("String format: %s", sum.String())
	}
	sum.Reset()
	if sum.NodeReads != 0 {
		t.Errorf("Reset failed")
	}
}

func TestTreeNodeLookup(t *testing.T) {
	_, doc := loadArticle(t)
	for ord := range doc.Nodes {
		n := doc.TreeNode(int32(ord))
		if n == nil || n.Ord != int32(ord) {
			t.Fatalf("TreeNode(%d) = %v", ord, n)
		}
	}
	if doc.TreeNode(-1) != nil || doc.TreeNode(int32(len(doc.Nodes))) != nil {
		t.Errorf("out-of-range TreeNode should be nil")
	}
}

func TestTagDictUnknown(t *testing.T) {
	d := NewTagDict()
	if name := d.Name(TagID(42)); name != "tag#42" {
		t.Errorf("unknown tag name = %q", name)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Errorf("Lookup(missing) should fail")
	}
	a := d.Intern("x")
	if b := d.Intern("x"); a != b {
		t.Errorf("re-intern changed id")
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestStoreDocBounds(t *testing.T) {
	s, doc := loadArticle(t)
	if s.Doc(doc.ID) != doc {
		t.Errorf("Doc lookup failed")
	}
	if s.Doc(-1) != nil || s.Doc(99) != nil {
		t.Errorf("out-of-range Doc should be nil")
	}
	if len(s.Docs()) != 1 {
		t.Errorf("Docs = %d", len(s.Docs()))
	}
}

func TestAddTreeRejectsUnnumberedOrdinals(t *testing.T) {
	// A hand-built tree whose ordinals were tampered with must be caught.
	root := mustParse(`<a><b/></a>`)
	root.Children[0].Ord = 5
	s := NewStore()
	if _, err := s.AddTree("bad", root); err == nil {
		t.Errorf("tampered ordinals accepted")
	}
}

func TestQuickStoreMirrorsRandomTrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomTree(rng, 2+rng.Intn(50))
		s := NewStore()
		id, err := s.AddTree("t", root)
		if err != nil {
			return false
		}
		doc := s.Doc(id)
		ok := true
		root.Walk(func(n *xmltree.Node) bool {
			rec := doc.Nodes[n.Ord]
			if rec.Start != n.Start || rec.End != n.End {
				ok = false
				return false
			}
			if n.Kind == xmltree.Element && s.Tags.Name(rec.Tag) != n.Tag {
				ok = false
				return false
			}
			if n.Kind == xmltree.Text && rec.Text != n.Text {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomTree(rng *rand.Rand, n int) *xmltree.Node {
	root := xmltree.NewElement("r")
	nodes := []*xmltree.Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		el := xmltree.NewElement([]string{"a", "b", "c"}[rng.Intn(3)])
		parent.AppendChild(el)
		nodes = append(nodes, el)
		if rng.Intn(3) == 0 {
			el.AppendChild(xmltree.NewText("some words here"))
		}
	}
	xmltree.Number(root)
	return root
}

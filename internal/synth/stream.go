package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/xmltree"
)

// StreamConfig sizes a streamed many-document corpus. Unlike Config —
// which materializes one large <corpus> tree — the streamed generator
// emits one small document at a time, so a million-document tier never
// holds more than one un-ingested tree in memory.
type StreamConfig struct {
	// Docs is the number of documents to emit.
	Docs int
	// ParasPerDoc and WordsPerPara bound the uniform random counts
	// ([min,max], inclusive).
	ParasPerDoc  [2]int
	WordsPerPara [2]int
	// VocabSize is the background vocabulary size (Zipf s=1.1, names
	// w000001…), as in Config.
	VocabSize int
	// Seed makes generation deterministic; each document derives its own
	// RNG from (Seed, doc index), so document i's content is a pure
	// function of the config.
	Seed int64
	// ControlTerms maps a control term to its exact total frequency across
	// the whole stream. Occurrences are spread with an exact period: term
	// occurrence k lands in document floor(k·Docs/freq), so every prefix of
	// the stream carries its proportional share.
	ControlTerms map[string]int
	// Phrases plants adjacent T1 T2 co-occurrences, spread with the same
	// exact period; planted pairs count toward both terms' ControlTerms
	// budgets, which must cover them.
	Phrases []PhraseSpec
}

// DefaultStreamConfig returns the document shape used by the hot-path
// benchmark tiers: small articles (~30 words) so a million documents fit
// comfortably in memory.
func DefaultStreamConfig(docs int) StreamConfig {
	return StreamConfig{
		Docs:         docs,
		ParasPerDoc:  [2]int{1, 3},
		WordsPerPara: [2]int{6, 18},
		VocabSize:    20000,
		Seed:         1,
	}
}

// StreamStats summarizes a finished stream.
type StreamStats struct {
	Docs  int
	Words int
	// Planted records the exact number of occurrences emitted per control
	// term (phrase pairs included).
	Planted map[string]int
}

// quota returns how many of freq evenly-spread occurrences land in
// document i of docs: occurrence k goes to document floor(k·docs/freq),
// so the count for document i is ceil((i+1)·freq/docs) - ceil(i·freq/docs)
// computed via the equivalent floor form. Summed over all documents this
// is exactly freq.
func quota(i, docs, freq int) int {
	return int(int64(i+1)*int64(freq)/int64(docs) - int64(i)*int64(freq)/int64(docs))
}

// GenerateStream emits cfg.Docs documents in order, calling emit with each
// document's index and numbered root. The tree passed to emit is not
// retained by the generator; ingest it (or drop it) freely.
func GenerateStream(cfg StreamConfig, emit func(i int, root *xmltree.Node) error) (*StreamStats, error) {
	if cfg.Docs <= 0 {
		return nil, fmt.Errorf("synth: Docs must be positive")
	}
	if cfg.VocabSize <= 0 {
		return nil, fmt.Errorf("synth: VocabSize must be positive")
	}
	// Phrase budgets must fit inside the terms' total frequencies, exactly
	// as in Generate.
	pairBudget := map[string]int{}
	for _, ph := range cfg.Phrases {
		if ph.Together < 0 {
			return nil, fmt.Errorf("synth: phrase %q %q: negative Together", ph.T1, ph.T2)
		}
		if ph.T1 == ph.T2 {
			return nil, fmt.Errorf("synth: streamed phrase %q %q must use distinct terms", ph.T1, ph.T2)
		}
		pairBudget[ph.T1] += ph.Together
		pairBudget[ph.T2] += ph.Together
	}
	budgetTerms := make([]string, 0, len(pairBudget))
	for t := range pairBudget {
		budgetTerms = append(budgetTerms, t)
	}
	sort.Strings(budgetTerms)
	for _, t := range budgetTerms {
		if have, ok := cfg.ControlTerms[t]; !ok || have < pairBudget[t] {
			return nil, fmt.Errorf("synth: term %q needs frequency >= %d for its phrases, have %d", t, pairBudget[t], cfg.ControlTerms[t])
		}
	}
	// Fixed iteration orders: planting consumes the per-document RNG, so
	// ranging over maps here would make generation run-dependent.
	terms := make([]string, 0, len(cfg.ControlTerms))
	for t := range cfg.ControlTerms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	// Singles quota per term = total frequency minus planted pairs.
	singles := make([]int, len(terms))
	for ti, t := range terms {
		singles[ti] = cfg.ControlTerms[t] - pairBudget[t]
	}

	// The background vocabulary is interned once; per-word Sprintf at the
	// million-document tier would dominate generation time.
	vocab := make([]string, cfg.VocabSize)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%06d", i)
	}

	stats := &StreamStats{Planted: map[string]int{}}
	for i := 0; i < cfg.Docs; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(i+1)*0x9e3779b97f4a7c15)))
		zipf := rand.NewZipf(rng, 1.1, 1.0, uint64(cfg.VocabSize-1))

		nParas := between(rng, cfg.ParasPerDoc)
		if nParas < 1 {
			nParas = 1
		}
		paras := make([][]string, nParas)
		total := 0
		for p := range paras {
			n := between(rng, cfg.WordsPerPara)
			if n < 1 {
				n = 1
			}
			words := make([]string, n)
			for w := range words {
				words[w] = vocab[zipf.Uint64()]
			}
			paras[p] = words
			total += n
		}

		// This document's exact share of the planted workload.
		type pair struct{ t1, t2 string }
		var pairs []pair
		need := 0
		for _, ph := range cfg.Phrases {
			for k := 0; k < quota(i, cfg.Docs, ph.Together); k++ {
				pairs = append(pairs, pair{ph.T1, ph.T2})
				need += 2
			}
		}
		type single struct{ term string }
		var ones []single
		for ti, t := range terms {
			for k := 0; k < quota(i, cfg.Docs, singles[ti]); k++ {
				ones = append(ones, single{t})
				need++
			}
		}
		// A document whose planted share exceeds half its words is padded
		// with background text: the exact-period spread occasionally lands
		// several terms on one small document, and failing (or skipping)
		// would break frequency exactness.
		for total < 2*need {
			pi := rng.Intn(len(paras))
			paras[pi] = append(paras[pi], vocab[zipf.Uint64()])
			total++
		}

		used := map[[2]int]bool{}
		pick := func(run int) ([2]int, bool) {
			for tries := 0; tries < 10000; tries++ {
				pi := rng.Intn(len(paras))
				if len(paras[pi]) < run {
					continue
				}
				wi := rng.Intn(len(paras[pi]) - run + 1)
				ok := true
				for k := 0; k < run; k++ {
					if used[[2]int{pi, wi + k}] {
						ok = false
						break
					}
				}
				if ok {
					return [2]int{pi, wi}, true
				}
			}
			return [2]int{}, false
		}
		for _, pr := range pairs {
			s, ok := pick(2)
			if !ok {
				return nil, fmt.Errorf("synth: could not place phrase %q %q in document %d", pr.t1, pr.t2, i)
			}
			paras[s[0]][s[1]] = pr.t1
			paras[s[0]][s[1]+1] = pr.t2
			used[s] = true
			used[[2]int{s[0], s[1] + 1}] = true
			stats.Planted[pr.t1]++
			stats.Planted[pr.t2]++
		}
		for _, sg := range ones {
			s, ok := pick(1)
			if !ok {
				return nil, fmt.Errorf("synth: could not place term %q in document %d", sg.term, i)
			}
			paras[s[0]][s[1]] = sg.term
			used[s] = true
			stats.Planted[sg.term]++
		}

		root := xmltree.NewElement("doc")
		for _, words := range paras {
			p := xmltree.NewElement("p")
			p.AppendChild(xmltree.NewText(strings.Join(words, " ")))
			root.AppendChild(p)
		}
		xmltree.Number(root)
		if err := emit(i, root); err != nil {
			return nil, err
		}
		stats.Docs++
		stats.Words += total
	}
	return stats, nil
}

func between(rng *rand.Rand, b [2]int) int {
	if b[1] <= b[0] {
		return b[0]
	}
	return b[0] + rng.Intn(b[1]-b[0]+1)
}

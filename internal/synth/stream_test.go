package synth

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// collectStream renders every emitted document's text as one word slice
// per document.
func collectStream(t *testing.T, cfg StreamConfig) (*StreamStats, [][]string) {
	t.Helper()
	var docs [][]string
	stats, err := GenerateStream(cfg, func(i int, root *xmltree.Node) error {
		var words []string
		var walk func(n *xmltree.Node)
		walk = func(n *xmltree.Node) {
			if n.Kind == xmltree.Text {
				words = append(words, strings.Fields(n.Text)...)
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(root)
		docs = append(docs, words)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats, docs
}

func streamTestConfig() StreamConfig {
	cfg := DefaultStreamConfig(400)
	cfg.Seed = 7
	cfg.ControlTerms = map[string]int{"ct1": 37, "ct2": 151, "ct3": 800}
	cfg.Phrases = []PhraseSpec{{T1: "ct1", T2: "ct2", Together: 11}}
	return cfg
}

func TestStreamExactFrequencies(t *testing.T) {
	cfg := streamTestConfig()
	stats, docs := collectStream(t, cfg)
	if stats.Docs != cfg.Docs {
		t.Fatalf("emitted %d docs, want %d", stats.Docs, cfg.Docs)
	}
	count := map[string]int{}
	adjacent := 0
	for _, words := range docs {
		for i, w := range words {
			count[w]++
			if w == "ct1" && i+1 < len(words) && words[i+1] == "ct2" {
				adjacent++
			}
		}
	}
	for term, want := range cfg.ControlTerms {
		if count[term] != want {
			t.Errorf("term %s: %d occurrences, want exactly %d", term, count[term], want)
		}
		if stats.Planted[term] != want {
			t.Errorf("stats.Planted[%s] = %d, want %d", term, stats.Planted[term], want)
		}
	}
	// Planted adjacencies are a floor: independently planted singles can
	// land adjacent by chance.
	if adjacent < 11 {
		t.Errorf("ct1 ct2 adjacencies = %d, want >= 11", adjacent)
	}
}

// TestStreamPrefixProportionality pins the exact-period spread: every
// prefix of the stream carries its proportional share of each control
// term, so a tier can be cut short without skewing the workload.
func TestStreamPrefixProportionality(t *testing.T) {
	cfg := streamTestConfig()
	_, docs := collectStream(t, cfg)
	half := map[string]int{}
	for _, words := range docs[:len(docs)/2] {
		for _, w := range words {
			if _, ok := cfg.ControlTerms[w]; ok {
				half[w]++
			}
		}
	}
	for term, want := range cfg.ControlTerms {
		lo, hi := want/2-1, want/2+1
		if half[term] < lo || half[term] > hi {
			t.Errorf("term %s: first half holds %d of %d occurrences, want %d..%d", term, half[term], want, lo, hi)
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	cfg := streamTestConfig()
	_, a := collectStream(t, cfg)
	_, b := collectStream(t, cfg)
	if len(a) != len(b) {
		t.Fatalf("doc counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if strings.Join(a[i], " ") != strings.Join(b[i], " ") {
			t.Fatalf("document %d differs between runs", i)
		}
	}
}

func TestStreamRejectsBadConfigs(t *testing.T) {
	cfg := streamTestConfig()
	cfg.Docs = 0
	if _, err := GenerateStream(cfg, nil); err == nil {
		t.Error("Docs=0 should error")
	}
	cfg = streamTestConfig()
	cfg.Phrases = []PhraseSpec{{T1: "nope", T2: "ct1", Together: 5}}
	if _, err := GenerateStream(cfg, nil); err == nil {
		t.Error("phrase term without frequency budget should error")
	}
	cfg = streamTestConfig()
	cfg.Phrases = []PhraseSpec{{T1: "ct1", T2: "ct1", Together: 2}}
	if _, err := GenerateStream(cfg, nil); err == nil {
		t.Error("repeated-term streamed phrase should error")
	}
}

// Package synth generates the synthetic stand-in for the INEX corpus used
// in the paper's evaluation (Sec. 6: IEEE Transactions articles, 18M
// elements, 500 MB). The INEX collection is licensed and unavailable, so
// this generator reproduces the properties the access methods are sensitive
// to:
//
//   - deep, article/front-matter/body/section/subsection/paragraph nesting
//     with text concentrated in the leaves (cost of ancestor expansion and
//     stack depth);
//   - a Zipfian background vocabulary (realistic posting-list skew);
//   - control terms planted at *exact* total frequencies (every table in
//     the evaluation sweeps term frequency on its x-axis); and
//   - control phrases planted with an exact number of adjacent
//     co-occurrences (Table 5's result-size column).
//
// Generation is fully deterministic given Config.Seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/xmltree"
)

// PhraseSpec plants a two-term phrase: Together adjacent occurrences of
// T1 immediately followed by T2. Planted pairs count toward each term's
// total frequency in Config.ControlTerms.
type PhraseSpec struct {
	T1, T2   string
	Together int
}

// Config controls corpus shape and the planted workload.
type Config struct {
	// Articles is the number of <article> elements.
	Articles int
	// SectionsPerArticle, SubsecsPerSection and ParasPerUnit bound the
	// uniform random counts of nested units ([min,max], inclusive).
	SectionsPerArticle [2]int
	SubsecsPerSection  [2]int
	ParasPerUnit       [2]int
	// WordsPerPara bounds the uniform random paragraph length in words.
	WordsPerPara [2]int
	// VocabSize is the background vocabulary size; background words are
	// named w000001… and drawn from a Zipf(s=1.1) distribution.
	VocabSize int
	// Seed makes generation deterministic.
	Seed int64
	// ControlTerms maps a control term to its exact total frequency in the
	// generated corpus. Control terms should not collide with background
	// words (any name not matching w\d+ is safe).
	ControlTerms map[string]int
	// Phrases plants adjacent co-occurrences; each term's planted pairs
	// must not exceed its ControlTerms budget.
	Phrases []PhraseSpec
}

// DefaultConfig returns a corpus configuration sized for tests and
// interactive use (~10k elements). Benchmarks scale it up.
func DefaultConfig() Config {
	return Config{
		Articles:           40,
		SectionsPerArticle: [2]int{3, 6},
		SubsecsPerSection:  [2]int{0, 3},
		ParasPerUnit:       [2]int{1, 4},
		WordsPerPara:       [2]int{20, 60},
		VocabSize:          4000,
		Seed:               1,
	}
}

// Corpus is the generated document plus bookkeeping about the planted
// workload.
type Corpus struct {
	Root *xmltree.Node
	// Paragraphs is the number of <p> leaves generated.
	Paragraphs int
	// Words is the total number of words of character data.
	Words int
	// PlantedFreq records the exact planted frequency of each control term.
	PlantedFreq map[string]int
}

type slot struct {
	para int
	word int
}

// Generate builds the corpus. It returns an error if the planted workload
// does not fit (too few word slots) or is inconsistent (phrase pairs exceed
// a term's frequency budget).
func Generate(cfg Config) (*Corpus, error) {
	if cfg.Articles <= 0 {
		return nil, fmt.Errorf("synth: Articles must be positive")
	}
	if cfg.VocabSize <= 0 {
		return nil, fmt.Errorf("synth: VocabSize must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, 1.1, 1.0, uint64(cfg.VocabSize-1))

	// Validate phrase budgets.
	pairBudget := map[string]int{}
	for _, ph := range cfg.Phrases {
		if ph.Together < 0 {
			return nil, fmt.Errorf("synth: phrase %q %q: negative Together", ph.T1, ph.T2)
		}
		pairBudget[ph.T1] += ph.Together
		pairBudget[ph.T2] += ph.Together
	}
	// Validate in sorted order so the first reported shortfall is the
	// same term on every run.
	budgetTerms := make([]string, 0, len(pairBudget))
	for t := range pairBudget {
		budgetTerms = append(budgetTerms, t)
	}
	sort.Strings(budgetTerms)
	for _, t := range budgetTerms {
		if have, ok := cfg.ControlTerms[t]; !ok || have < pairBudget[t] {
			return nil, fmt.Errorf("synth: term %q needs frequency >= %d for its phrases, have %d", t, pairBudget[t], cfg.ControlTerms[t])
		}
	}

	// Phase 1: generate the document skeleton with paragraph word arrays.
	gen := &generator{cfg: cfg, rng: rng, zipf: zipf}
	root := xmltree.NewElement("corpus")
	for i := 0; i < cfg.Articles; i++ {
		root.AppendChild(gen.article(i))
	}

	totalWords := 0
	for _, p := range gen.paras {
		totalWords += len(p)
	}

	// Phase 2: plant control phrases (pairs of adjacent slots), then control
	// term singles, by overwriting background words.
	need := 0
	for _, f := range cfg.ControlTerms {
		need += f
	}
	if need > totalWords/2 {
		return nil, fmt.Errorf("synth: planted workload (%d occurrences) exceeds half the corpus (%d words); enlarge the corpus", need, totalWords)
	}

	used := make(map[slot]bool)
	pickSlot := func(minRun int) (slot, bool) {
		// Rejection-sample an unused slot with minRun consecutive free words.
		for tries := 0; tries < 10000; tries++ {
			pi := rng.Intn(len(gen.paras))
			para := gen.paras[pi]
			if len(para) < minRun {
				continue
			}
			wi := rng.Intn(len(para) - minRun + 1)
			ok := true
			for k := 0; k < minRun; k++ {
				if used[slot{pi, wi + k}] {
					ok = false
					break
				}
			}
			if ok {
				return slot{pi, wi}, true
			}
		}
		return slot{}, false
	}

	planted := map[string]int{}
	for _, ph := range cfg.Phrases {
		for n := 0; n < ph.Together; n++ {
			s, ok := pickSlot(2)
			if !ok {
				return nil, fmt.Errorf("synth: could not place phrase %q %q; corpus too small", ph.T1, ph.T2)
			}
			gen.paras[s.para][s.word] = ph.T1
			gen.paras[s.para][s.word+1] = ph.T2
			used[s] = true
			used[slot{s.para, s.word + 1}] = true
			planted[ph.T1]++
			planted[ph.T2]++
		}
	}
	// Plant in sorted term order: ranging over the map directly would
	// consume the rng in a run-dependent order, making generation
	// nondeterministic for a fixed seed.
	terms := make([]string, 0, len(cfg.ControlTerms))
	for term := range cfg.ControlTerms {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	for _, term := range terms {
		freq := cfg.ControlTerms[term]
		for planted[term] < freq {
			s, ok := pickSlot(1)
			if !ok {
				return nil, fmt.Errorf("synth: could not place term %q; corpus too small", term)
			}
			gen.paras[s.para][s.word] = term
			used[s] = true
			planted[term]++
		}
	}

	// Phase 3: flush paragraph word arrays into text nodes and number.
	for i, words := range gen.paras {
		gen.paraNodes[i].AppendChild(xmltree.NewText(strings.Join(words, " ")))
	}
	xmltree.Number(root)

	return &Corpus{
		Root:        root,
		Paragraphs:  len(gen.paras),
		Words:       totalWords,
		PlantedFreq: planted,
	}, nil
}

type generator struct {
	cfg       Config
	rng       *rand.Rand
	zipf      *rand.Zipf
	paras     [][]string
	paraNodes []*xmltree.Node
}

func (g *generator) between(b [2]int) int {
	if b[1] <= b[0] {
		return b[0]
	}
	return b[0] + g.rng.Intn(b[1]-b[0]+1)
}

func (g *generator) word() string {
	return fmt.Sprintf("w%06d", g.zipf.Uint64())
}

func (g *generator) shortText(n int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = g.word()
	}
	return strings.Join(words, " ")
}

// para creates a <p> element whose text is filled in later, so control terms
// can be planted into the word array first.
func (g *generator) para() *xmltree.Node {
	p := xmltree.NewElement("p")
	n := g.between(g.cfg.WordsPerPara)
	if n < 1 {
		n = 1
	}
	words := make([]string, n)
	for i := range words {
		words[i] = g.word()
	}
	g.paras = append(g.paras, words)
	g.paraNodes = append(g.paraNodes, p)
	return p
}

// article mirrors the INEX IEEE article structure: front matter with title
// and authors, a body of sections with optional subsections, and a back
// matter bibliography.
func (g *generator) article(i int) *xmltree.Node {
	art := xmltree.NewElement("article")
	art.SetAttr("id", fmt.Sprintf("a%05d", i))

	fm := xmltree.NewElement("fm")
	atl := xmltree.NewElement("atl")
	atl.AppendChild(xmltree.NewText(g.shortText(3 + g.rng.Intn(6))))
	fm.AppendChild(atl)
	for a := 0; a <= g.rng.Intn(3); a++ {
		au := xmltree.NewElement("au")
		fnm := xmltree.NewElement("fnm")
		fnm.AppendChild(xmltree.NewText(g.shortText(1)))
		snm := xmltree.NewElement("snm")
		snm.AppendChild(xmltree.NewText(g.shortText(1)))
		au.AppendChild(fnm)
		au.AppendChild(snm)
		fm.AppendChild(au)
	}
	abs := xmltree.NewElement("abs")
	abs.AppendChild(g.para())
	fm.AppendChild(abs)
	art.AppendChild(fm)

	bdy := xmltree.NewElement("bdy")
	for s := 0; s < g.between(g.cfg.SectionsPerArticle); s++ {
		sec := xmltree.NewElement("sec")
		st := xmltree.NewElement("st")
		st.AppendChild(xmltree.NewText(g.shortText(2 + g.rng.Intn(4))))
		sec.AppendChild(st)
		for p := 0; p < g.between(g.cfg.ParasPerUnit); p++ {
			sec.AppendChild(g.para())
		}
		for ss := 0; ss < g.between(g.cfg.SubsecsPerSection); ss++ {
			ss1 := xmltree.NewElement("ss1")
			sst := xmltree.NewElement("st")
			sst.AppendChild(xmltree.NewText(g.shortText(2 + g.rng.Intn(3))))
			ss1.AppendChild(sst)
			for p := 0; p < g.between(g.cfg.ParasPerUnit); p++ {
				ss1.AppendChild(g.para())
			}
			sec.AppendChild(ss1)
		}
		bdy.AppendChild(sec)
	}
	art.AppendChild(bdy)

	bm := xmltree.NewElement("bm")
	bib := xmltree.NewElement("bib")
	for b := 0; b < 2+g.rng.Intn(6); b++ {
		bb := xmltree.NewElement("bb")
		batl := xmltree.NewElement("atl")
		batl.AppendChild(xmltree.NewText(g.shortText(3 + g.rng.Intn(5))))
		bb.AppendChild(batl)
		bib.AppendChild(bb)
	}
	bm.AppendChild(bib)
	art.AppendChild(bm)
	return art
}

// ScaleToElements returns a Config tuned to produce roughly the requested
// number of XML elements with the default shape parameters, preserving the
// seed and planted workload of base.
func ScaleToElements(base Config, elements int) Config {
	cfg := base
	// With default shape parameters one article yields ~90 elements on
	// average (sections × (paras + subsections × paras) plus front/back
	// matter); solve for the article count.
	perArticle := 90.0
	cfg.Articles = int(math.Max(1, float64(elements)/perArticle))
	return cfg
}

package synth

import (
	"testing"

	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	c1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if xmltree.XMLString(c1.Root) != xmltree.XMLString(c2.Root) {
		t.Errorf("same seed produced different corpora")
	}
	cfg.Seed = 2
	c3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if xmltree.XMLString(c1.Root) == xmltree.XMLString(c3.Root) {
		t.Errorf("different seeds produced identical corpora")
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := DefaultConfig()
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmltree.Validate(c.Root); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	if got := len(c.Root.FindTag("article")); got != cfg.Articles {
		t.Errorf("articles = %d, want %d", got, cfg.Articles)
	}
	if len(c.Root.FindTag("sec")) == 0 || len(c.Root.FindTag("p")) == 0 {
		t.Errorf("missing sections or paragraphs")
	}
	if c.Paragraphs != len(c.Root.FindTag("p")) {
		t.Errorf("Paragraphs = %d, actual p count = %d", c.Paragraphs, len(c.Root.FindTag("p")))
	}
	if c.Words <= 0 {
		t.Errorf("Words = %d", c.Words)
	}
	// Depth: a paragraph under a subsection sits at level ≥ 4.
	maxLevel := uint16(0)
	c.Root.Walk(func(n *xmltree.Node) bool {
		if n.Level > maxLevel {
			maxLevel = n.Level
		}
		return true
	})
	if maxLevel < 4 {
		t.Errorf("max level = %d, want nesting >= 4", maxLevel)
	}
}

func TestControlTermsExactFrequency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ControlTerms = map[string]int{"ctla": 20, "ctlb": 100, "ctlc": 7}
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := storage.NewStore()
	if _, err := s.AddTree("corpus", c.Root); err != nil {
		t.Fatal(err)
	}
	idx := index.Build(s, tokenize.New())
	for term, want := range cfg.ControlTerms {
		if got := idx.TermFreq(term); got != want {
			t.Errorf("TermFreq(%s) = %d, want %d", term, got, want)
		}
		if c.PlantedFreq[term] != want {
			t.Errorf("PlantedFreq[%s] = %d, want %d", term, c.PlantedFreq[term], want)
		}
	}
}

func TestControlPhrases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ControlTerms = map[string]int{"pha": 50, "phb": 40}
	cfg.Phrases = []PhraseSpec{{T1: "pha", T2: "phb", Together: 30}}
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := storage.NewStore()
	if _, err := s.AddTree("corpus", c.Root); err != nil {
		t.Fatal(err)
	}
	idx := index.Build(s, tokenize.New())
	if got := idx.TermFreq("pha"); got != 50 {
		t.Errorf("TermFreq(pha) = %d, want 50", got)
	}
	if got := idx.TermFreq("phb"); got != 40 {
		t.Errorf("TermFreq(phb) = %d, want 40", got)
	}
	// Count adjacent co-occurrences by brute force; planting guarantees at
	// least Together (random singles may add more by chance, but singles
	// never overwrite planted pairs).
	tok := tokenize.New()
	adj := 0
	c.Root.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Text {
			adj += tok.CountPhrase(n.Text, []string{"pha", "phb"})
		}
		return true
	})
	if adj < 30 {
		t.Errorf("adjacent co-occurrences = %d, want >= 30", adj)
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Articles = 0
	if _, err := Generate(cfg); err == nil {
		t.Errorf("Articles=0 should error")
	}
	cfg = DefaultConfig()
	cfg.VocabSize = 0
	if _, err := Generate(cfg); err == nil {
		t.Errorf("VocabSize=0 should error")
	}
	cfg = DefaultConfig()
	cfg.ControlTerms = map[string]int{"x": 1}
	cfg.Phrases = []PhraseSpec{{T1: "x", T2: "y", Together: 5}}
	if _, err := Generate(cfg); err == nil {
		t.Errorf("phrase budget overflow should error")
	}
	cfg = DefaultConfig()
	cfg.Articles = 1
	cfg.SectionsPerArticle = [2]int{1, 1}
	cfg.SubsecsPerSection = [2]int{0, 0}
	cfg.ParasPerUnit = [2]int{1, 1}
	cfg.WordsPerPara = [2]int{5, 5}
	cfg.ControlTerms = map[string]int{"big": 100000}
	if _, err := Generate(cfg); err == nil {
		t.Errorf("oversized workload should error")
	}
}

func TestScaleToElements(t *testing.T) {
	cfg := ScaleToElements(DefaultConfig(), 20000)
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	c.Root.Walk(func(m *xmltree.Node) bool {
		if m.Kind == xmltree.Element {
			n++
		}
		return true
	})
	if n < 10000 || n > 40000 {
		t.Errorf("elements = %d, want within 2x of 20000", n)
	}
}

// Package tokenize provides the word tokenizer shared by the inverted index
// (internal/index) and the scoring functions (internal/scoring).
//
// A token is a maximal run of letters and digits; tokens are lowercased so
// that indexing and query matching are case-insensitive. The tokenizer
// reports the word offset of each token — the same word-granular positions
// used by the region encoding in internal/xmltree — which is what lets
// PhraseFinder verify phrase adjacency during posting-list intersection.
package tokenize

import (
	"strings"
	"unicode"
)

// Token is one word occurrence in a piece of character data.
type Token struct {
	// Term is the lowercased token text.
	Term string
	// Offset is the 0-based word offset of the token within its text node.
	Offset uint32
}

// Tokenizer splits character data into tokens. The zero value is ready to
// use and keeps stopwords; use NewWithStopwords to drop them.
type Tokenizer struct {
	stop map[string]bool
	stem bool
}

// New returns a tokenizer that keeps every token.
func New() *Tokenizer { return &Tokenizer{} }

// NewStemming returns a tokenizer that additionally applies a light
// plural-stripping stemmer, so that "engines" and "engine" index and match
// as the same term. The paper's worked example (Figures 5–8) scores
// "search engines" as an occurrence of the phrase "search engine"; this
// tokenizer reproduces that behaviour.
func NewStemming() *Tokenizer { return &Tokenizer{stem: true} }

// NewWithStopwords returns a tokenizer that drops the given words (compared
// after lowercasing). Dropped words still consume a word offset, so phrase
// adjacency over the remaining words is preserved.
func NewWithStopwords(words []string) *Tokenizer {
	t := &Tokenizer{stop: make(map[string]bool, len(words))}
	for _, w := range words {
		t.stop[strings.ToLower(w)] = true
	}
	return t
}

// DefaultStopwords is a small English stopword list suitable for the
// IR-style workloads in the paper's evaluation.
var DefaultStopwords = []string{
	"a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if",
	"in", "into", "is", "it", "no", "not", "of", "on", "or", "such",
	"that", "the", "their", "then", "there", "these", "they", "this",
	"to", "was", "will", "with",
}

func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Tokenize splits s into tokens with word offsets. Word offsets count every
// token, including stopwords that are subsequently dropped.
func (t *Tokenizer) Tokenize(s string) []Token {
	var out []Token
	off := uint32(0)
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		term := strings.ToLower(s[start:end])
		if t.stem {
			term = stem(term)
		}
		if t.stop == nil || !t.stop[term] {
			out = append(out, Token{Term: term, Offset: off})
		}
		off++
		start = -1
	}
	for i, r := range s {
		if isTokenRune(r) {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(s))
	return out
}

// Terms returns just the token terms of s, in order.
func (t *Tokenizer) Terms(s string) []string {
	toks := t.Tokenize(s)
	out := make([]string, len(toks))
	for i, tk := range toks {
		out[i] = tk.Term
	}
	return out
}

// Normalize lowercases (and, for stemming tokenizers, stems) a query term
// so it compares equal to indexed tokens.
func (t *Tokenizer) Normalize(term string) string {
	term = strings.ToLower(term)
	if t.stem {
		term = stem(term)
	}
	return term
}

// stem applies light plural stripping: a trailing "s" is removed from terms
// of length ≥ 4 unless they end in "ss" or "us".
func stem(term string) string {
	n := len(term)
	if n >= 4 && term[n-1] == 's' && term[n-2] != 's' && term[n-2] != 'u' {
		return term[:n-1]
	}
	return term
}

// Count returns the number of occurrences of term (normalized exact match)
// in s.
func (t *Tokenizer) Count(s, term string) int {
	term = t.Normalize(term)
	n := 0
	for _, tk := range t.Tokenize(s) {
		if tk.Term == term {
			n++
		}
	}
	return n
}

// CountPhrase returns the number of occurrences of the multi-word phrase in
// s: the phrase terms must appear at consecutive word offsets, in order.
func (t *Tokenizer) CountPhrase(s string, phrase []string) int {
	if len(phrase) == 0 {
		return 0
	}
	lowered := make([]string, len(phrase))
	for i, p := range phrase {
		lowered[i] = t.Normalize(p)
	}
	toks := t.Tokenize(s)
	n := 0
	for i := 0; i+len(lowered) <= len(toks); i++ {
		ok := true
		for j := range lowered {
			if toks[i+j].Term != lowered[j] || toks[i+j].Offset != toks[i].Offset+uint32(j) {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

// SplitPhrase tokenizes a query phrase (e.g. "search engine") into its
// constituent lowercase terms, with stopwords removed per the tokenizer's
// configuration.
func (t *Tokenizer) SplitPhrase(phrase string) []string {
	return t.Terms(phrase)
}

package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tk := New()
	got := tk.Tokenize("Search Engine basics!")
	want := []Token{{"search", 0}, {"engine", 1}, {"basics", 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizePunctuationAndDigits(t *testing.T) {
	tk := New()
	got := tk.Tokenize("web-scale IR, since 1998 (really).")
	want := []Token{{"web", 0}, {"scale", 1}, {"ir", 2}, {"since", 3}, {"1998", 4}, {"really", 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmptyAndSpace(t *testing.T) {
	tk := New()
	if got := tk.Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := tk.Tokenize("  \t\n "); len(got) != 0 {
		t.Errorf("Tokenize(space) = %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	tk := New()
	got := tk.Tokenize("Maße der Welt")
	want := []Token{{"maße", 0}, {"der", 1}, {"welt", 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestStopwordsPreserveOffsets(t *testing.T) {
	tk := NewWithStopwords([]string{"the", "of"})
	got := tk.Tokenize("the art of search")
	want := []Token{{"art", 1}, {"search", 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestCount(t *testing.T) {
	tk := New()
	s := "search engine search ENGINE searching"
	if got := tk.Count(s, "search"); got != 2 {
		t.Errorf("Count(search) = %d, want 2", got)
	}
	if got := tk.Count(s, "Engine"); got != 2 {
		t.Errorf("Count(Engine) = %d, want 2", got)
	}
	if got := tk.Count(s, "retrieval"); got != 0 {
		t.Errorf("Count(retrieval) = %d, want 0", got)
	}
}

func TestCountPhrase(t *testing.T) {
	tk := New()
	s := "information retrieval and information, retrieval of information retrieval"
	// Occurrences at offsets (0,1) and (6,7); "information, retrieval"
	// tokenizes to adjacent offsets (3,4) too because punctuation does not
	// consume a word offset.
	if got := tk.CountPhrase(s, []string{"information", "retrieval"}); got != 3 {
		t.Errorf("CountPhrase = %d, want 3", got)
	}
	if got := tk.CountPhrase("information", []string{"information", "retrieval"}); got != 0 {
		t.Errorf("CountPhrase(single word) = %d, want 0", got)
	}
	if got := tk.CountPhrase(s, nil); got != 0 {
		t.Errorf("CountPhrase(empty) = %d, want 0", got)
	}
	if got := tk.CountPhrase("x search engine y", []string{"Search", "Engine"}); got != 1 {
		t.Errorf("CountPhrase(case) = %d, want 1", got)
	}
}

func TestSplitPhrase(t *testing.T) {
	tk := New()
	got := tk.SplitPhrase("Information Retrieval")
	if !reflect.DeepEqual(got, []string{"information", "retrieval"}) {
		t.Errorf("SplitPhrase = %v", got)
	}
}

func TestStemming(t *testing.T) {
	tk := NewStemming()
	got := tk.Terms("engines techniques basics class buses is as")
	// engines→engine, techniques→technique, basics→basic; "class" ends in
	// ss (kept), "buses" ends in …es with preceding 'e'? No: rule strips a
	// final s unless the word ends in ss or us — "buses" → "buse";
	// two-letter words are kept.
	want := []string{"engine", "technique", "basic", "class", "buse", "is", "as"}
	if len(got) != len(want) {
		t.Fatalf("Terms = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("term %d = %q, want %q", i, got[i], want[i])
		}
	}
	// "us"-final words are preserved (corpus, status).
	if got := tk.Normalize("corpus"); got != "corpu" && got != "corpus" {
		t.Errorf("Normalize(corpus) = %q", got)
	}
	if got := tk.Normalize("status"); got != "status" {
		t.Errorf("Normalize(status) = %q, want status (us-final keeps s)", got)
	}
	// Query-side normalization matches index-side.
	if tk.Count("search engines everywhere", "engine") != 1 {
		t.Errorf("stemmed count failed")
	}
	if tk.CountPhrase("search engines here", []string{"search", "engine"}) != 1 {
		t.Errorf("stemmed phrase count failed")
	}
	// The plain tokenizer does not stem.
	if New().Count("engines", "engine") != 0 {
		t.Errorf("plain tokenizer stemmed")
	}
}

func TestQuickOffsetsMonotonic(t *testing.T) {
	tk := New()
	f := func(s string) bool {
		toks := tk.Tokenize(s)
		for i := 1; i < len(toks); i++ {
			if toks[i].Offset <= toks[i-1].Offset {
				return false
			}
		}
		for _, tok := range toks {
			if tok.Term == "" || tok.Term != strings.ToLower(tok.Term) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesTerms(t *testing.T) {
	tk := New()
	f := func(s string) bool {
		terms := tk.Terms(s)
		counts := map[string]int{}
		for _, term := range terms {
			counts[term]++
		}
		for term, want := range counts {
			if tk.Count(s, term) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

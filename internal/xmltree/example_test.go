package xmltree_test

import (
	"fmt"

	"repro/internal/xmltree"
)

// mustParse panics on malformed XML; examples only ever parse literals.
func mustParse(src string) *xmltree.Node {
	n, err := xmltree.ParseString(src)
	if err != nil {
		panic(err)
	}
	return n
}

func ExampleParseString() {
	root, err := xmltree.ParseString(`<article><title>TIX</title><p>scored trees</p></article>`)
	if err != nil {
		panic(err)
	}
	fmt.Println(root.Tag, root.Size())
	fmt.Println(root.FirstTag("title").AllText())
	// Output:
	// article 5
	// TIX
}

func ExampleNode_IsAncestorOf() {
	root := mustParse(`<a><b><c/></b><d/></a>`)
	b := root.FirstTag("b")
	c := root.FirstTag("c")
	d := root.FirstTag("d")
	fmt.Println(b.IsAncestorOf(c), b.IsAncestorOf(d), root.Contains(root))
	// Output: true false true
}

func ExampleNode_AllText() {
	root := mustParse(`<sec><title>One</title><p>two three</p></sec>`)
	fmt.Println(root.AllText())
	// Output: One two three
}

func ExampleNumber() {
	root := xmltree.NewElement("a")
	root.AppendChild(xmltree.NewText("two words"))
	xmltree.Number(root)
	// The region encoding is word-granular: the text node's words occupy
	// consecutive positions inside the parent's region.
	text := root.Children[0]
	fmt.Printf("a=[%d,%d] text=[%d,%d]\n", root.Start, root.End, text.Start, text.End)
	// Output: a=[0,4] text=[1,3]
}

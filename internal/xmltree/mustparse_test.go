package xmltree

// mustParse parses a literal test document, panicking on error — the
// test-only replacement for the removed MustParse.
func mustParse(src string) *Node {
	n, err := ParseString(src)
	if err != nil {
		panic(err)
	}
	return n
}

package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Parse reads one XML document from r and returns its numbered tree. If the
// input contains multiple top-level elements (as reviews.xml in the paper's
// Fig. 1 does), they are wrapped under a synthetic root element named
// wrapper, mirroring what an XML database's document node would do.
//
// Character data is whitespace-trimmed; whitespace-only text nodes are
// dropped. Comments and processing instructions are ignored.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var roots []*Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewElement(t.Name.Local)
			for _, a := range t.Attr {
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) > 0 {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element </%s>", t.Name.Local)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				roots = append(roots, top)
			}
		case xml.CharData:
			if len(stack) == 0 {
				continue // ignore top-level whitespace
			}
			text := strings.TrimSpace(string(t))
			if text == "" {
				continue
			}
			stack[len(stack)-1].AppendChild(NewText(text))
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unclosed element <%s>", stack[len(stack)-1].Tag)
	}
	var root *Node
	switch len(roots) {
	case 0:
		return nil, fmt.Errorf("xmltree: parse: empty document")
	case 1:
		root = roots[0]
	default:
		root = NewElement("wrapper")
		for _, r := range roots {
			root.AppendChild(r)
		}
	}
	Number(root)
	return root, nil
}

// ParseString is Parse over an in-memory document.
//
// There is deliberately no panicking Must variant in this package: every
// production load path reports malformed XML as an error. Tests that parse
// literal documents keep small private helpers.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// WriteXML serializes the subtree rooted at n as XML to w. Output is
// indented with two spaces per level when indent is true.
func WriteXML(w io.Writer, n *Node, indent bool) error {
	return writeXML(w, n, 0, indent)
}

func writeXML(w io.Writer, n *Node, depth int, indent bool) error {
	pad := ""
	nl := ""
	if indent {
		pad = strings.Repeat("  ", depth)
		nl = "\n"
	}
	if n.Kind == Text {
		var b strings.Builder
		if err := xml.EscapeText(&b, []byte(n.Text)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s%s%s", pad, b.String(), nl)
		return err
	}
	var attrs strings.Builder
	for _, a := range n.Attrs {
		attrs.WriteByte(' ')
		attrs.WriteString(a.Name)
		attrs.WriteString(`="`)
		_ = xml.EscapeText(&attrs, []byte(a.Value))
		attrs.WriteByte('"')
	}
	if len(n.Children) == 0 {
		_, err := fmt.Fprintf(w, "%s<%s%s/>%s", pad, n.Tag, attrs.String(), nl)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s%s>%s", pad, n.Tag, attrs.String(), nl); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeXML(w, c, depth+1, indent); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>%s", pad, n.Tag, nl)
	return err
}

// XMLString serializes the subtree rooted at n to a string.
func XMLString(n *Node) string {
	var sb strings.Builder
	_ = WriteXML(&sb, n, true)
	return sb.String()
}

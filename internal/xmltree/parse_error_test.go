package xmltree

import (
	"strings"
	"testing"
)

// TestParseMalformed: every malformed input is reported as an error — the
// parser has no panicking path (MustParse was removed deliberately; see
// ParseString).
func TestParseMalformed(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"empty", "", "empty document"},
		{"whitespace only", "   \n\t ", "empty document"},
		{"unclosed element", "<a><b>text</b>", "parse"},
		{"unclosed root", "<a>", "parse"},
		{"stray end tag", "</a>", "syntax error"},
		{"mismatched tags", "<a></b>", "parse"},
		{"bare text", "just words", "empty document"},
		{"truncated tag", "<a", "parse"},
		{"bad entity", "<a>&nosuch;</a>", "parse"},
		{"attr without value", `<a x=></a>`, "parse"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := ParseString(tc.src)
			if err == nil {
				t.Fatalf("ParseString(%q) accepted, got %v", tc.src, n)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "xmltree: parse") {
				t.Errorf("error %q not in the xmltree: parse namespace", err)
			}
		})
	}
}

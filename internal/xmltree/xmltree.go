// Package xmltree implements the ordered labeled tree data model that
// underlies the TIX algebra (Al-Khalifa, Yu, Jagadish: "Querying Structured
// Text in an XML Database", SIGMOD 2003).
//
// XML data is modeled as a rooted, ordered tree. Each node carries a tag (or
// text payload for text nodes) and a set of attribute-value pairs. Every
// node additionally carries a region encoding — (Start, End, Level) — in the
// style of the structural-join literature: Start and End are word-granular
// positions in the document, so that
//
//	a is an ancestor of d  ⇔  a.Start < d.Start && d.End <= a.End
//
// and word offsets of individual term occurrences fall inside the region of
// every enclosing element. The region encoding is assigned by Number (or by
// Parse, which numbers automatically) and is the basis for the stack-based
// access methods in internal/exec.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes element nodes from text nodes.
type Kind uint8

const (
	// Element is an interior (tagged) node.
	Element Kind = iota
	// Text is a leaf node holding character data.
	Text
)

// String returns "element" or "text".
func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr is a single attribute-value pair on an element node.
type Attr struct {
	Name  string
	Value string
}

// Node is a node of an ordered labeled XML tree.
//
// For Element nodes, Tag is the element name and Children holds the ordered
// child list. For Text nodes, Text holds the character data and Children is
// empty. Start, End and Level are filled in by Number.
type Node struct {
	Kind     Kind
	Tag      string // element name; empty for text nodes
	Text     string // character data; empty for element nodes
	Attrs    []Attr
	Parent   *Node
	Children []*Node

	// Region encoding (word-granular). Valid after Number.
	Start uint32
	End   uint32
	Level uint16

	// Ord is the preorder ordinal of the node within its document,
	// starting at 0 for the root. Valid after Number. It doubles as a
	// stable node identifier for storage layers.
	Ord int32

	// Src is the provenance pointer of a derived node: operators that
	// clone nodes into witness or projection trees (internal/algebra) set
	// it to the original document node, surviving renumbering of the
	// derived tree. Nil on nodes that are not derived.
	Src *Node
}

// Origin returns the original document node this node derives from,
// following the provenance chain; a non-derived node returns itself.
func (n *Node) Origin() *Node {
	o := n
	for o.Src != nil {
		o = o.Src
	}
	return o
}

// NewElement returns a new element node with the given tag.
func NewElement(tag string) *Node {
	return &Node{Kind: Element, Tag: tag}
}

// NewText returns a new text node with the given character data.
func NewText(text string) *Node {
	return &Node{Kind: Text, Text: text}
}

// AppendChild appends c as the last child of n and sets c.Parent.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return n
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets (or replaces) the named attribute.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// IsAncestorOf reports whether n is a proper ancestor of d, judged by the
// region encoding. Both nodes must belong to the same numbered document.
func (n *Node) IsAncestorOf(d *Node) bool {
	return n.Start < d.Start && d.End <= n.End
}

// Contains reports whether n is d itself or an ancestor of d (the ad*
// relationship of the TIX pattern trees).
func (n *Node) Contains(d *Node) bool {
	return n == d || n.IsAncestorOf(d)
}

// Ancestors returns the chain of proper ancestors of n, from parent up to
// the root.
func (n *Node) Ancestors() []*Node {
	var out []*Node
	for p := n.Parent; p != nil; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// Root returns the root of the tree containing n.
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// Walk visits n and every descendant in document (preorder) order. If f
// returns false the walk below that node is pruned.
func (n *Node) Walk(f func(*Node) bool) {
	if !f(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// FindAll returns all nodes in the subtree rooted at n (including n itself)
// for which pred returns true, in document order.
func (n *Node) FindAll(pred func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if pred(m) {
			out = append(out, m)
		}
		return true
	})
	return out
}

// FindTag returns all element nodes with the given tag in the subtree rooted
// at n, in document order.
func (n *Node) FindTag(tag string) []*Node {
	return n.FindAll(func(m *Node) bool { return m.Kind == Element && m.Tag == tag })
}

// FirstTag returns the first element with the given tag in document order,
// or nil.
func (n *Node) FirstTag(tag string) *Node {
	var found *Node
	n.Walk(func(m *Node) bool {
		if found != nil {
			return false
		}
		if m.Kind == Element && m.Tag == tag {
			found = m
			return false
		}
		return true
	})
	return found
}

// AllText concatenates the character data of every text node in the subtree
// rooted at n, in document order, separated by single spaces. This realizes
// the alltext() function used by the paper's scoring functions (Fig. 9).
func (n *Node) AllText() string {
	var sb strings.Builder
	first := true
	n.Walk(func(m *Node) bool {
		if m.Kind == Text && m.Text != "" {
			if !first {
				sb.WriteByte(' ')
			}
			sb.WriteString(m.Text)
			first = false
		}
		return true
	})
	return sb.String()
}

// TextNodes returns every text node of the subtree in document order.
func (n *Node) TextNodes() []*Node {
	return n.FindAll(func(m *Node) bool { return m.Kind == Text })
}

// Size returns the number of nodes (elements and text nodes) in the subtree
// rooted at n, including n itself.
func (n *Node) Size() int {
	c := 0
	n.Walk(func(*Node) bool { c++; return true })
	return c
}

// ChildElements returns only the element children of n, in order.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == Element {
			out = append(out, c)
		}
	}
	return out
}

// Clone deep-copies the subtree rooted at n. The clone's Parent is nil; all
// numbering fields are copied verbatim.
func (n *Node) Clone() *Node {
	cp := &Node{
		Kind:  n.Kind,
		Tag:   n.Tag,
		Text:  n.Text,
		Start: n.Start,
		End:   n.End,
		Level: n.Level,
		Ord:   n.Ord,
	}
	if len(n.Attrs) > 0 {
		cp.Attrs = append([]Attr(nil), n.Attrs...)
	}
	for _, c := range n.Children {
		cc := c.Clone()
		cc.Parent = cp
		cp.Children = append(cp.Children, cc)
	}
	return cp
}

// String renders a short human-readable description of the node.
func (n *Node) String() string {
	switch n.Kind {
	case Text:
		t := n.Text
		if len(t) > 32 {
			t = t[:29] + "..."
		}
		return fmt.Sprintf("text(%q)[%d:%d]", t, n.Start, n.End)
	default:
		return fmt.Sprintf("<%s>[%d:%d @%d]", n.Tag, n.Start, n.End, n.Level)
	}
}

// wordCount counts whitespace-separated words; the region encoding advances
// by one position per word so that term offsets nest inside element regions.
func wordCount(s string) uint32 {
	n := uint32(0)
	inWord := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		isSpace := c == ' ' || c == '\t' || c == '\n' || c == '\r'
		if !isSpace && !inWord {
			n++
			inWord = true
		} else if isSpace {
			inWord = false
		}
	}
	return n
}

// Number assigns the region encoding (Start, End, Level) and preorder
// ordinals (Ord) to every node of the tree rooted at root. Positions are
// word-granular: the counter advances by one for every element open tag, by
// one for every word of character data, and by one for every close tag, so
// that for a text node the k-th word (0-based) occupies position
// Start+k. Number returns the total number of nodes.
func Number(root *Node) int {
	pos := uint32(0)
	ord := int32(0)
	var rec func(n *Node, level uint16)
	rec = func(n *Node, level uint16) {
		n.Level = level
		n.Ord = ord
		ord++
		n.Start = pos
		pos++ // open tag / start of text
		if n.Kind == Text {
			w := wordCount(n.Text)
			if w > 0 {
				pos += w - 1 // first word sits at Start
			}
		}
		for _, c := range n.Children {
			rec(c, level+1)
		}
		n.End = pos
		pos++ // close tag
	}
	rec(root, 0)
	return int(ord)
}

// Nodes returns every node of the numbered tree in document order.
func Nodes(root *Node) []*Node {
	out := make([]*Node, 0, 64)
	root.Walk(func(n *Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// ByStart sorts a node slice by Start key (document order).
func ByStart(nodes []*Node) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Start < nodes[j].Start })
}

// Validate checks the structural invariants of a numbered tree: parent
// regions strictly contain child regions, siblings are disjoint and ordered,
// levels increase by one on each edge, and ordinals are a preorder sequence.
// It returns the first violation found, or nil.
func Validate(root *Node) error {
	if root.Parent != nil {
		return fmt.Errorf("root has non-nil parent")
	}
	prevOrd := int32(-1)
	var rec func(n *Node) error
	rec = func(n *Node) error {
		if n.Ord != prevOrd+1 {
			return fmt.Errorf("node %v: ord %d, want %d", n, n.Ord, prevOrd+1)
		}
		prevOrd = n.Ord
		if n.Start > n.End {
			return fmt.Errorf("node %v: start > end", n)
		}
		var prev *Node
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("child %v of %v: bad parent pointer", c, n)
			}
			if c.Level != n.Level+1 {
				return fmt.Errorf("child %v of %v: level %d, want %d", c, n, c.Level, n.Level+1)
			}
			if !(n.Start < c.Start && c.End < n.End) {
				return fmt.Errorf("child %v not strictly inside parent %v", c, n)
			}
			if prev != nil && !(prev.End < c.Start) {
				return fmt.Errorf("siblings %v and %v overlap", prev, c)
			}
			prev = c
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(root)
}

package xmltree

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const articleDoc = `
<article>
  <article-title>Internet Technologies</article-title>
  <author id="first"><fname>Jane</fname><sname>Doe</sname></author>
  <chapter><ct>Caching and Replication</ct></chapter>
  <chapter><ct>Streaming Video</ct></chapter>
  <chapter>
    <ct>Search and Retrieval</ct>
    <section><section-title>Search Engine Basics</section-title></section>
    <section><section-title>Information Retrieval Techniques</section-title></section>
    <section>
      <section-title>Examples</section-title>
      <p>Here are some IR based search engines:</p>
      <p>search engine NewsInEssence uses a new information retrieval technology</p>
      <p>semantic information retrieval techniques are also being incorporated into some search engines</p>
    </section>
  </chapter>
</article>`

func TestParseArticle(t *testing.T) {
	root, err := ParseString(articleDoc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if root.Tag != "article" {
		t.Fatalf("root tag = %q, want article", root.Tag)
	}
	if err := Validate(root); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	chapters := root.FindTag("chapter")
	if len(chapters) != 3 {
		t.Fatalf("chapters = %d, want 3", len(chapters))
	}
	ps := root.FindTag("p")
	if len(ps) != 3 {
		t.Fatalf("p elements = %d, want 3", len(ps))
	}
	if got, _ := root.FirstTag("author").Attr("id"); got != "first" {
		t.Errorf("author/@id = %q, want first", got)
	}
	sname := root.FirstTag("sname")
	if sname.AllText() != "Doe" {
		t.Errorf("sname text = %q, want Doe", sname.AllText())
	}
}

func TestParseMultipleRootsWrapped(t *testing.T) {
	doc := `<review id="1"><rating>5</rating></review><review id="2"><rating>3</rating></review>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if root.Tag != "wrapper" {
		t.Fatalf("root = %q, want wrapper", root.Tag)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(root.Children))
	}
	if err := Validate(root); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"<a><b></a>",
		"<a>",
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestAncestry(t *testing.T) {
	root := mustParse(articleDoc)
	p := root.FindTag("p")[1]
	section := root.FindTag("section")[2]
	chapter := root.FindTag("chapter")[2]
	other := root.FindTag("chapter")[0]

	if !section.IsAncestorOf(p) {
		t.Errorf("section should be ancestor of p")
	}
	if !chapter.IsAncestorOf(p) {
		t.Errorf("chapter should be ancestor of p")
	}
	if !root.IsAncestorOf(p) {
		t.Errorf("root should be ancestor of p")
	}
	if other.IsAncestorOf(p) {
		t.Errorf("first chapter must not be ancestor of p under third chapter")
	}
	if p.IsAncestorOf(p) {
		t.Errorf("node is not its own ancestor")
	}
	if !p.Contains(p) {
		t.Errorf("Contains must include self (ad*)")
	}

	anc := p.Ancestors()
	if len(anc) != 3 {
		t.Fatalf("ancestors = %d, want 3 (section, chapter, article)", len(anc))
	}
	if anc[0] != section || anc[1] != chapter || anc[2] != root {
		t.Errorf("ancestor chain order wrong: %v", anc)
	}
	if p.Root() != root {
		t.Errorf("Root() wrong")
	}
}

func TestRegionEncodingMatchesAncestry(t *testing.T) {
	root := mustParse(articleDoc)
	nodes := Nodes(root)
	for _, a := range nodes {
		for _, d := range nodes {
			want := false
			for p := d.Parent; p != nil; p = p.Parent {
				if p == a {
					want = true
					break
				}
			}
			if got := a.IsAncestorOf(d); got != want {
				t.Fatalf("IsAncestorOf(%v, %v) = %v, want %v", a, d, got, want)
			}
		}
	}
}

func TestWordPositionsInsideRegions(t *testing.T) {
	root := mustParse(`<a><b>one two three</b><c>four</c></a>`)
	b := root.FirstTag("b")
	tn := b.Children[0]
	if tn.Kind != Text {
		t.Fatalf("expected text child")
	}
	// Three words occupy positions Start..Start+2 and must be within b's
	// region and a's region.
	for k := uint32(0); k < 3; k++ {
		pos := tn.Start + k
		if !(b.Start < pos || b.Start == pos) || pos > b.End {
			t.Errorf("word %d at %d outside <b> region [%d,%d]", k, pos, b.Start, b.End)
		}
		if pos <= root.Start || pos >= root.End {
			t.Errorf("word %d at %d outside <a> region [%d,%d]", k, pos, root.Start, root.End)
		}
	}
	c := root.FirstTag("c")
	if c.Start <= b.End {
		t.Errorf("sibling c region [%d,%d] must start after b ends at %d", c.Start, c.End, b.End)
	}
}

func TestAllText(t *testing.T) {
	root := mustParse(`<a><b>hello</b><c><d>brave new</d> world</c></a>`)
	if got := root.AllText(); got != "hello brave new world" {
		t.Errorf("AllText = %q", got)
	}
	if got := root.FirstTag("c").AllText(); got != "brave new world" {
		t.Errorf("AllText(c) = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	root := mustParse(articleDoc)
	cp := root.Clone()
	if cp.Parent != nil {
		t.Errorf("clone parent must be nil")
	}
	if cp.Size() != root.Size() {
		t.Fatalf("clone size %d != %d", cp.Size(), root.Size())
	}
	cp.FirstTag("sname").Children[0].Text = "Smith"
	if root.FirstTag("sname").AllText() != "Doe" {
		t.Errorf("mutating clone affected original")
	}
	// Numbering fields must be copied verbatim.
	if cp.Start != root.Start || cp.End != root.End || cp.Ord != root.Ord {
		t.Errorf("clone numbering differs")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	root := mustParse(articleDoc)
	s := XMLString(root)
	again, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !structurallyEqual(root, again) {
		t.Errorf("round trip changed structure:\n%s\nvs\n%s", s, XMLString(again))
	}
}

func TestSerializeEscaping(t *testing.T) {
	root := NewElement("a")
	root.SetAttr("q", `x<y&"z"`)
	root.AppendChild(NewText("1 < 2 & 3"))
	Number(root)
	s := XMLString(root)
	again, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse escaped: %v (%s)", err, s)
	}
	if got := again.AllText(); got != "1 < 2 & 3" {
		t.Errorf("text round trip = %q", got)
	}
	if got, _ := again.Attr("q"); got != `x<y&"z"` {
		t.Errorf("attr round trip = %q", got)
	}
}

func structurallyEqual(a, b *Node) bool {
	if a.Kind != b.Kind || a.Tag != b.Tag || a.Text != b.Text || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !structurallyEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// randomTree builds a random tree with n element nodes and occasional text
// leaves, for property tests.
func randomTree(rng *rand.Rand, n int) *Node {
	root := NewElement("r")
	nodes := []*Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		el := NewElement([]string{"a", "b", "c", "d"}[rng.Intn(4)])
		parent.AppendChild(el)
		nodes = append(nodes, el)
		if rng.Intn(3) == 0 {
			words := make([]string, 1+rng.Intn(4))
			for w := range words {
				words[w] = []string{"tix", "xml", "text", "query", "join"}[rng.Intn(5)]
			}
			el.AppendChild(NewText(strings.Join(words, " ")))
		}
	}
	Number(root)
	return root
}

func TestQuickNumberingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, sz uint8) bool {
		n := int(sz%60) + 1
		tree := randomTree(rand.New(rand.NewSource(seed)), n)
		return Validate(tree) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRegionEqualsPointerAncestry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(rng, 2+rng.Intn(40))
		nodes := Nodes(tree)
		for i := 0; i < 50; i++ {
			a := nodes[rng.Intn(len(nodes))]
			d := nodes[rng.Intn(len(nodes))]
			want := false
			for p := d.Parent; p != nil; p = p.Parent {
				if p == a {
					want = true
					break
				}
			}
			if a.IsAncestorOf(d) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSerializeParseIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(rng, 2+rng.Intn(30))
		again, err := ParseString(XMLString(tree))
		if err != nil {
			return false
		}
		return structurallyEqual(tree, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseCDataCommentsAndPI(t *testing.T) {
	doc := `<?xml version="1.0"?>
<a><!-- a comment --><b><![CDATA[raw <text> here]]></b><?pi target?></a>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	// Comments and processing instructions are dropped; CDATA becomes
	// character data.
	if got := root.FirstTag("b").AllText(); got != "raw <text> here" {
		t.Errorf("CDATA text = %q", got)
	}
	if root.Size() != 3 {
		t.Errorf("size = %d, want 3 (a, b, text)", root.Size())
	}
}

func TestParseEntities(t *testing.T) {
	root, err := ParseString(`<a>fish &amp; chips &lt;now&gt;</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.AllText(); got != "fish & chips <now>" {
		t.Errorf("entities = %q", got)
	}
}

func TestParseWhitespaceOnlyTextDropped(t *testing.T) {
	root, err := ParseString("<a>\n  <b>x</b>\n  \t\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if root.Size() != 3 {
		t.Errorf("size = %d, want 3 (whitespace runs dropped)", root.Size())
	}
}

func TestDeepNesting(t *testing.T) {
	// 2,000 levels of nesting must parse, number and validate without
	// overflow of the uint16 level only guarding realistic depths.
	var sb strings.Builder
	depth := 2000
	for i := 0; i < depth; i++ {
		sb.WriteString("<d>")
	}
	sb.WriteString("leaf")
	for i := 0; i < depth; i++ {
		sb.WriteString("</d>")
	}
	root, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(root); err != nil {
		t.Fatal(err)
	}
	maxLevel := uint16(0)
	root.Walk(func(n *Node) bool {
		if n.Level > maxLevel {
			maxLevel = n.Level
		}
		return true
	})
	if maxLevel != uint16(depth) {
		t.Errorf("max level = %d, want %d", maxLevel, depth)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	f.after--
	return len(p), nil
}

func TestWriteXMLPropagatesWriterErrors(t *testing.T) {
	root := mustParse(articleDoc)
	// Fail at several points in the serialization; the error must always
	// surface, never be swallowed.
	for _, after := range []int{0, 1, 5, 20} {
		if err := WriteXML(&failWriter{after: after}, root, true); err == nil {
			t.Errorf("writer failing after %d writes: error swallowed", after)
		}
	}
	// A writer with enough capacity succeeds.
	if err := WriteXML(&failWriter{after: 1 << 20}, root, false); err != nil {
		t.Errorf("healthy writer errored: %v", err)
	}
}

func TestOriginProvenance(t *testing.T) {
	root := mustParse(`<a><b>x</b></a>`)
	b := root.FirstTag("b")
	clone := &Node{Kind: b.Kind, Tag: b.Tag, Src: b}
	second := &Node{Kind: b.Kind, Tag: b.Tag, Src: clone}
	if b.Origin() != b {
		t.Errorf("original node's origin must be itself")
	}
	if clone.Origin() != b || second.Origin() != b {
		t.Errorf("provenance chain not followed")
	}
}

func TestWordCount(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
	}{
		{"", 0},
		{"   ", 0},
		{"one", 1},
		{"one two", 2},
		{"  spaced   out words ", 3},
		{"tab\tand\nnewline", 3},
	}
	for _, c := range cases {
		if got := wordCount(c.in); got != c.want {
			t.Errorf("wordCount(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNodesAndByStart(t *testing.T) {
	root := mustParse(articleDoc)
	nodes := Nodes(root)
	if len(nodes) != root.Size() {
		t.Fatalf("Nodes len %d != Size %d", len(nodes), root.Size())
	}
	// Shuffle and re-sort.
	shuffled := append([]*Node(nil), nodes...)
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	ByStart(shuffled)
	for i := range nodes {
		if nodes[i] != shuffled[i] {
			t.Fatalf("ByStart does not restore document order at %d", i)
		}
	}
}

package xq

import (
	"fmt"
	"strings"
)

// Query is the parsed form of an extended-XQuery query (Fig. 10 shapes).
// Single-For queries are the Query 1/2 shape; queries with multiple For
// clauses plus Let/Where/ScoreBar express the Query 3 similarity-join
// shape.
type Query struct {
	Fors      []ForClause
	Let       *LetClause
	Where     *WhereClause
	Score     *ScoreClause
	Pick      *PickClause
	Combine   *CombineClause
	Return    *ReturnClause
	SortBy    bool // Sortby(score)
	Threshold *ThresholdClause
}

// ForClause binds a variable to the node set of a path expression.
type ForClause struct {
	Var  string
	Path PathExpr
}

// PathExpr is document("name") — or, for a relative binding like
// "$a/descendant-or-self::*", a previously bound variable — followed by
// steps. Exactly one of Document and BaseVar is set.
type PathExpr struct {
	Document string
	BaseVar  string
	Steps    []Step
}

// LetClause is `Let $v := ScoreSim($a/key, $b/key)`: the similarity-scored
// join condition of Query 3 (Fig. 4's $joinScore).
type LetClause struct {
	Var               string
	LeftVar, RightVar string
	LeftKey, RightKey string
}

// WhereClause is `Where $v > N` — the "Threshold simScore > 1" step of the
// paper's Query 3, applied to the join score.
type WhereClause struct {
	Var string
	Min float64
}

// CombineClause is `Score $r using ScoreBar($sim, $d)`: the final score
// combining the join score with a component's relevance (Fig. 9's
// ScoreBar).
type CombineClause struct {
	Var     string
	SimVar  string
	CompVar string
}

// StepKind enumerates the supported path steps.
type StepKind int

const (
	// StepChild is /name.
	StepChild StepKind = iota
	// StepDescendant is //name.
	StepDescendant
	// StepDescendantOrSelf is /descendant-or-self::* — the ad* axis that
	// selects candidate result granularities.
	StepDescendantOrSelf
	// StepPredicate is a [relpath = "value"] filter on the current nodes.
	StepPredicate
)

// Step is one path step.
type Step struct {
	Kind StepKind
	Name string // element name for StepChild/StepDescendant ("*" = any)
	Pred *Predicate
}

// Predicate is the [relpath = "value"] filter. When Attr is non-empty the
// relpath was @attr; otherwise Names is the element path, optionally
// terminated by text(). Value is the comparison literal; an empty Value
// with Exists set tests existence only.
type Predicate struct {
	Attr   string
	Names  []string
	Text   bool // path ends in text()
	Value  string
	Exists bool
}

// ScoreClause is "Score $v using ScoreFoo($v, {primary…}, {secondary…})".
// Each phrase set may carry a declarative weight ("{…} weight 0.9"),
// realizing the Sec. 2 motivation that weighting heuristics should be
// specifiable in the query rather than hard-wired; the defaults are
// ScoreFoo's 0.8 and 0.6 (Fig. 9).
type ScoreClause struct {
	Var             string
	ArgVar          string
	Primary         []string
	Secondary       []string
	PrimaryWeight   float64
	SecondaryWeight float64
}

// PickClause is "Pick $v using PickFoo($v [, threshold])"; the optional
// threshold overrides the default relevance cutoff of 0.8 used by the
// paper's PickFoo.
type PickClause struct {
	Var       string
	ArgVar    string
	Threshold float64
	HasThresh bool
}

// ReturnClause stores the raw result template (the engine renders results
// in the canonical <result><score>…</score>{…}</result> shape regardless;
// the template is retained for round-tripping and diagnostics).
type ReturnClause struct {
	Raw string
}

// ThresholdClause is "Threshold $v/@score > V [stop after K]".
type ThresholdClause struct {
	Var      string
	MinScore float64
	HasMin   bool
	StopK    int
	HasStopK bool
}

// String renders the query back in the dialect's surface syntax.
func (q *Query) String() string {
	var sb strings.Builder
	for _, f := range q.Fors {
		fmt.Fprintf(&sb, "For $%s in %s\n", f.Var, f.Path)
	}
	if q.Let != nil {
		fmt.Fprintf(&sb, "Let $%s := ScoreSim($%s/%s, $%s/%s)\n",
			q.Let.Var, q.Let.LeftVar, q.Let.LeftKey, q.Let.RightVar, q.Let.RightKey)
	}
	if q.Where != nil {
		fmt.Fprintf(&sb, "Where $%s > %g\n", q.Where.Var, q.Where.Min)
	}
	if q.Score != nil {
		fmt.Fprintf(&sb, "Score $%s using ScoreFoo($%s, %s%s, %s%s)\n",
			q.Score.Var, q.Score.ArgVar,
			phraseSet(q.Score.Primary), weightSuffix(q.Score.PrimaryWeight, 0.8),
			phraseSet(q.Score.Secondary), weightSuffix(q.Score.SecondaryWeight, 0.6))
	}
	if q.Pick != nil {
		if q.Pick.HasThresh {
			fmt.Fprintf(&sb, "Pick $%s using PickFoo($%s, %g)\n", q.Pick.Var, q.Pick.ArgVar, q.Pick.Threshold)
		} else {
			fmt.Fprintf(&sb, "Pick $%s using PickFoo($%s)\n", q.Pick.Var, q.Pick.ArgVar)
		}
	}
	if q.Combine != nil {
		fmt.Fprintf(&sb, "Score $%s using ScoreBar($%s, $%s)\n",
			q.Combine.Var, q.Combine.SimVar, q.Combine.CompVar)
	}
	if q.Return != nil {
		fmt.Fprintf(&sb, "Return %s\n", strings.TrimSpace(q.Return.Raw))
	}
	if q.SortBy {
		sb.WriteString("Sortby(score)\n")
	}
	if q.Threshold != nil {
		fmt.Fprintf(&sb, "Threshold $%s/@score", q.Threshold.Var)
		if q.Threshold.HasMin {
			fmt.Fprintf(&sb, " > %g", q.Threshold.MinScore)
		}
		if q.Threshold.HasStopK {
			fmt.Fprintf(&sb, " stop after %d", q.Threshold.StopK)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func weightSuffix(w, def float64) string {
	if w == def {
		return ""
	}
	return fmt.Sprintf(" weight %g", w)
}

func phraseSet(ps []string) string {
	quoted := make([]string, len(ps))
	for i, p := range ps {
		quoted[i] = fmt.Sprintf("%q", p)
	}
	return "{" + strings.Join(quoted, ", ") + "}"
}

// String renders the path expression.
func (p PathExpr) String() string {
	var sb strings.Builder
	if p.BaseVar != "" {
		fmt.Fprintf(&sb, "$%s", p.BaseVar)
	} else {
		fmt.Fprintf(&sb, "document(%q)", p.Document)
	}
	for _, s := range p.Steps {
		sb.WriteString(s.String())
	}
	return sb.String()
}

// String renders one step.
func (s Step) String() string {
	switch s.Kind {
	case StepChild:
		return "/" + s.Name
	case StepDescendant:
		return "//" + s.Name
	case StepDescendantOrSelf:
		return "/descendant-or-self::*"
	case StepPredicate:
		return s.Pred.String()
	default:
		return "?"
	}
}

// String renders the predicate.
func (p *Predicate) String() string {
	var inner string
	if p.Attr != "" {
		inner = "@" + p.Attr
	} else {
		inner = "/" + strings.Join(p.Names, "/")
		if p.Text {
			inner += "/text()"
		}
	}
	if !p.Exists {
		inner += fmt.Sprintf("=%q", p.Value)
	}
	return "[" + inner + "]"
}

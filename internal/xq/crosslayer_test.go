package xq

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/index"
	"repro/internal/pattern"
	"repro/internal/scoring"
	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// TestQuickPhysicalMatchesLogical cross-checks the two independent
// implementations of the paper's semantics on random documents: the
// physical pipeline (path evaluation → TermJoin → StackPick) must agree
// with the logical algebra (pattern match → Project → Pick) on both the
// scored element sets and the picked sets.
func TestQuickPhysicalMatchesLogical(t *testing.T) {
	words := []string{"alpha", "beta", "filler", "noise"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := randomDoc(rng, words)
		tok := tokenize.New()

		// Physical side.
		s := storage.NewStore()
		if _, err := s.AddTree("doc.xml", root); err != nil {
			return false
		}
		e := &Engine{Store: s, Index: index.Build(s, tok)}
		phys, err := e.EvalString(`
			For $a in document("doc.xml")//article/descendant-or-self::*
			Score $a using ScoreFoo($a, {"alpha"}, {"beta"})
			Sortby(score)
		`)
		if err != nil {
			t.Logf("seed %d: eval: %v", seed, err)
			return false
		}

		// Logical side: the same semantics through the algebra. Note the
		// logical layer works on an independent clone of the document.
		clone := root.Clone()
		xmltree.Number(clone)
		p := pattern.NewPattern(1)
		p.Root.Child(4, pattern.ADStar)
		p.Formula = pattern.Conj(pattern.TagEq(1, "article"), pattern.IsElement(4))
		scores := &algebra.ScoreSet{
			Primary: map[int]algebra.NodeScorer{4: func(n *xmltree.Node) float64 {
				return scoring.ScoreFoo(tok, n, []string{"alpha"}, []string{"beta"})
			}},
			Secondary: map[int]algebra.ScoreExpr{1: algebra.VarScore(4)},
		}
		logical := algebra.Project(algebra.FromXML(clone), p, scores,
			[]int{1, 4}, algebra.ProjectOptions{DropZeroIR: true})

		// Collect (ord → score) from both sides. The logical projection
		// retains its root even when zero-scored (it is the $1 binding);
		// the physical side only emits occurrence-containing elements.
		physScores := map[int32]float64{}
		for _, r := range phys {
			if r.Score > 0 {
				physScores[r.Ord] = r.Score
			}
		}
		logScores := map[int32]float64{}
		for _, lt := range logical {
			for n, sc := range lt.Scores {
				if sc > 0 {
					logScores[n.Ord] = sc
				}
			}
		}
		if len(physScores) != len(logScores) {
			t.Logf("seed %d: phys %d vs logical %d scored nodes", seed, len(physScores), len(logScores))
			return false
		}
		for ord, sc := range logScores {
			if got, ok := physScores[ord]; !ok || math.Abs(got-sc) > 1e-9 {
				t.Logf("seed %d: ord %d phys %v logical %v", seed, ord, physScores[ord], sc)
				return false
			}
		}

		// Picked sets agree as well (both layers implement Fig. 12).
		physPicked, err := e.EvalString(`
			For $a in document("doc.xml")//article/descendant-or-self::*
			Score $a using ScoreFoo($a, {"alpha"}, {"beta"})
			Pick $a using PickFoo($a)
		`)
		if err != nil {
			return false
		}
		pickedOrds := map[int32]bool{}
		for _, r := range physPicked {
			pickedOrds[r.Ord] = true
		}
		logPickedCount := 0
		for _, lt := range logical {
			for _, n := range algebra.PickedNodes(lt, algebra.DefaultCriterion(0.8)) {
				logPickedCount++
				if !pickedOrds[n.Ord] {
					t.Logf("seed %d: logical picked ord %d missing physically", seed, n.Ord)
					return false
				}
			}
		}
		return logPickedCount == len(pickedOrds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomDoc builds a random article with text leaves drawn from words.
func randomDoc(rng *rand.Rand, words []string) *xmltree.Node {
	root := xmltree.NewElement("article")
	elems := []*xmltree.Node{root}
	n := 2 + rng.Intn(20)
	for i := 0; i < n; i++ {
		parent := elems[rng.Intn(len(elems))]
		el := xmltree.NewElement(fmt.Sprintf("e%d", rng.Intn(4)))
		parent.AppendChild(el)
		elems = append(elems, el)
		if rng.Intn(2) == 0 {
			text := ""
			for w := 0; w < 1+rng.Intn(5); w++ {
				if text != "" {
					text += " "
				}
				text += words[rng.Intn(len(words))]
			}
			el.AppendChild(xmltree.NewText(text))
		}
	}
	xmltree.Number(root)
	return root
}

package xq

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/scoring"
	"repro/internal/storage"
	"repro/internal/tokenize"
	"repro/internal/xmltree"
)

// Engine evaluates parsed queries against a store and its inverted index,
// using the physical access methods of internal/exec: PhraseFinder turns
// multi-word phrases into pseudo-term posting lists, TermJoin generates
// scores in one stack-based merge pass, StackPick eliminates redundant
// granularities, and the Threshold clause maps onto the top-k machinery.
type Engine struct {
	Store *storage.Store
	Index *index.Index
	// Stats, when non-nil, accumulates the store-access statistics of
	// every evaluation run through this engine (structural navigation,
	// TermJoin scoring, and result materialization all read through one
	// accounting accessor per Eval).
	Stats *storage.AccessStats
	// Guard, when non-nil, is the cooperative cancellation and resource
	// budget for evaluations run through this engine: it is checked during
	// structural navigation, passed into every access method the engine
	// dispatches to, and charged with every store access (the evaluation
	// accessor is attached to the guard's budget).
	Guard *exec.Guard
}

// noteStats folds an evaluation accessor's counters into the engine's
// optional Stats sink.
func (e *Engine) noteStats(acc *storage.Accessor) {
	if e.Stats != nil {
		e.Stats.Add(acc.Stats)
	}
}

// Result is one query result: the scored element and its materialized
// subtree. For join queries (the Query 3 shape), Sim carries the
// similarity component of the score and Right the joined right-side
// element.
type Result struct {
	Doc   storage.DocID
	Ord   int32
	Score float64
	Node  *xmltree.Node
	Sim   float64
	Right *xmltree.Node
}

// EvalString parses and evaluates a query.
func (e *Engine) EvalString(src string) ([]Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Eval(q)
}

// Eval evaluates a parsed query, dispatching between the single-For
// (Query 1/2) and the multi-For join (Query 3) shapes.
func (e *Engine) Eval(q *Query) ([]Result, error) {
	if err := e.Guard.Check(); err != nil {
		return nil, err
	}
	if len(q.Fors) == 0 {
		return nil, fmt.Errorf("xq: query has no For clause")
	}
	if len(q.Fors) > 1 {
		return e.evalJoin(q)
	}
	if q.Let != nil || q.Where != nil || q.Combine != nil {
		return nil, fmt.Errorf("xq: Let/Where/ScoreBar clauses require the multi-For join shape")
	}
	return e.evalSingle(q)
}

// evalSingle evaluates the Query 1/2 shape.
func (e *Engine) evalSingle(q *Query) ([]Result, error) {
	doc := e.Store.DocByName(q.Fors[0].Path.Document)
	if doc == nil {
		return nil, fmt.Errorf("xq: document %q not loaded", q.Fors[0].Path.Document)
	}
	acc := e.Guard.Attach(storage.NewAccessor(e.Store))
	defer e.noteStats(acc)

	anchors, expand, err := e.evalSteps(acc, doc, q.Fors[0].Path.Steps)
	if err != nil {
		return nil, err
	}

	// Variable sanity: Score/Pick/Threshold must reference the For var.
	for _, v := range []struct {
		name string
		got  string
	}{
		{"Score", scoreVar(q)},
		{"Pick", pickVar(q)},
		{"Threshold", threshVar(q)},
	} {
		if v.got != "" && v.got != q.Fors[0].Var {
			return nil, fmt.Errorf("xq: %s clause references $%s, but the For clause binds $%s", v.name, v.got, q.Fors[0].Var)
		}
	}

	var results []Result
	if q.Score == nil {
		// Pure structural query: candidates with null scores.
		cands := anchors
		if expand {
			cands = expandDescendantOrSelf(doc, anchors)
		}
		for _, ord := range cands {
			results = append(results, Result{Doc: doc.ID, Ord: ord, Score: 0})
		}
	} else {
		results, err = e.scoreAndPick(acc, doc, anchors, expand, q)
		if err != nil {
			return nil, err
		}
	}

	// Threshold V condition (strictly greater, as in the algebra).
	if q.Threshold != nil && q.Threshold.HasMin {
		kept := results[:0]
		for _, r := range results {
			if r.Score > q.Threshold.MinScore {
				kept = append(kept, r)
			}
		}
		results = kept
	}
	if q.SortBy {
		sort.SliceStable(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	}
	if q.Threshold != nil && q.Threshold.HasStopK {
		if !q.SortBy {
			// stop after K is rank-based; rank requires an ordering.
			sort.SliceStable(results, func(i, j int) bool { return results[i].Score > results[j].Score })
		}
		if len(results) > q.Threshold.StopK {
			results = results[:q.Threshold.StopK]
		}
	}
	// Materialize result subtrees.
	for i := range results {
		if err := e.Guard.Tick(); err != nil {
			return nil, err
		}
		results[i].Node = acc.Materialize(results[i].Doc, results[i].Ord)
	}
	return results, nil
}

func scoreVar(q *Query) string {
	if q.Score == nil {
		return ""
	}
	return q.Score.Var
}

func pickVar(q *Query) string {
	if q.Pick == nil {
		return ""
	}
	return q.Pick.Var
}

func threshVar(q *Query) string {
	if q.Threshold == nil {
		return ""
	}
	return q.Threshold.Var
}

// evalSteps evaluates the structural steps, returning the anchor node set
// and whether a trailing descendant-or-self::* step expands each anchor to
// every element of its subtree.
func (e *Engine) evalSteps(acc *storage.Accessor, doc *storage.Document, steps []Step) (anchors []int32, expand bool, err error) {
	cur := []int32{0} // the document root
	rootSet := true
	for i, s := range steps {
		switch s.Kind {
		case StepDescendantOrSelf:
			if i != len(steps)-1 {
				return nil, false, fmt.Errorf("xq: descendant-or-self::* is only supported as the final step")
			}
			return cur, true, nil
		case StepDescendant:
			cur, err = e.descendants(acc, doc, cur, s.Name, rootSet)
			if err != nil {
				return nil, false, err
			}
		case StepChild:
			cur, err = e.children(acc, doc, cur, s.Name)
			if err != nil {
				return nil, false, err
			}
		case StepPredicate:
			kept := cur[:0]
			for _, ord := range cur {
				if err := e.Guard.Tick(); err != nil {
					return nil, false, err
				}
				ok, perr := e.predicateHolds(acc, doc, ord, s.Pred)
				if perr != nil {
					return nil, false, perr
				}
				if ok {
					kept = append(kept, ord)
				}
			}
			cur = kept
		}
		rootSet = false
	}
	return cur, false, nil
}

// descendants returns elements with the given tag (or any element for "*")
// that are descendants of any node in from, in document order. When from
// is the whole-document root the tag extent answers directly.
func (e *Engine) descendants(acc *storage.Accessor, doc *storage.Document, from []int32, name string, fromRoot bool) ([]int32, error) {
	extent := e.tagExtent(doc, name)
	if fromRoot {
		// The // axis hangs off the document node, which sits above the
		// root element, so the whole extent (including the root element)
		// qualifies.
		return extent, nil
	}
	// Structural join: from-as-ancestors × extent-as-descendants.
	var out []int32
	seen := map[int32]bool{}
	pairs, err := exec.AncDescPairsGuarded(acc, doc.ID, from, extent, e.Guard)
	if err != nil {
		return nil, err
	}
	for _, pr := range pairs {
		if err := e.Guard.Tick(); err != nil {
			return nil, err
		}
		if !seen[pr[1]] {
			seen[pr[1]] = true
			out = append(out, pr[1])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (e *Engine) tagExtent(doc *storage.Document, name string) []int32 {
	if name == "*" {
		return doc.Elements()
	}
	tid, ok := e.Store.Tags.Lookup(name)
	if !ok {
		return nil
	}
	return doc.TagExtent(tid)
}

func (e *Engine) children(acc *storage.Accessor, doc *storage.Document, from []int32, name string) ([]int32, error) {
	var out []int32
	for _, ord := range from {
		for c := acc.Node(doc.ID, ord).FirstChild; c != storage.NoNode; {
			if err := e.Guard.Tick(); err != nil {
				return nil, err
			}
			rec := acc.Node(doc.ID, c)
			if rec.Kind == xmltree.Element && (name == "*" || e.Store.Tags.Name(rec.Tag) == name) {
				out = append(out, c)
			}
			c = rec.NextSibling
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// predicateHolds evaluates [path="v"], [path], or [@attr="v"] relative to
// (doc, ord).
func (e *Engine) predicateHolds(acc *storage.Accessor, doc *storage.Document, ord int32, p *Predicate) (bool, error) {
	if p.Attr != "" {
		n := doc.TreeNode(ord)
		if n == nil {
			return false, nil
		}
		got, ok := n.Attr(p.Attr)
		if p.Exists {
			return ok, nil
		}
		return ok && got == p.Value, nil
	}
	// Walk the child chain names[0]/names[1]/… .
	cur := []int32{ord}
	for _, name := range p.Names {
		var err error
		cur, err = e.children(acc, doc, cur, name)
		if err != nil {
			return false, err
		}
		if len(cur) == 0 {
			return false, nil
		}
	}
	if p.Exists {
		return len(cur) > 0, nil
	}
	for _, c := range cur {
		var text string
		if p.Text {
			text = directTextOf(acc, doc, c)
		} else {
			text = acc.SubtreeText(doc.ID, c)
		}
		if text == p.Value {
			return true, nil
		}
	}
	return false, nil
}

func directTextOf(acc *storage.Accessor, doc *storage.Document, ord int32) string {
	out := ""
	for c := acc.Node(doc.ID, ord).FirstChild; c != storage.NoNode; {
		rec := acc.Node(doc.ID, c)
		if rec.Kind == xmltree.Text {
			if out != "" {
				out += " "
			}
			out += rec.Text
		}
		c = rec.NextSibling
	}
	return out
}

func expandDescendantOrSelf(doc *storage.Document, anchors []int32) []int32 {
	var out []int32
	for _, a := range anchors {
		end := doc.SubtreeEnd(a)
		for i := a; i < end; i++ {
			if doc.Nodes[i].Kind == xmltree.Element {
				out = append(out, i)
			}
		}
	}
	return out
}

// scoreAndPick runs the IR part of the query: score generation via
// PhraseFinder + TermJoin, then the optional Pick, restricted to the
// anchors' subtrees.
func (e *Engine) scoreAndPick(acc *storage.Accessor, doc *storage.Document, anchors []int32, expand bool, q *Query) ([]Result, error) {
	if !expand {
		// Scoring without granularity expansion: each anchor is scored on
		// its own subtree.
		return e.scoreAnchorsDirectly(acc, doc, anchors, q)
	}
	// Build the pseudo-term posting lists: 0.8-weighted primary phrases,
	// 0.6-weighted secondary phrases (ScoreFoo of Fig. 9).
	var lists []index.List
	var weights []float64
	var names []string
	add := func(phrase string, w float64) error {
		terms := e.Index.Tokenizer().SplitPhrase(phrase)
		if len(terms) == 0 {
			return fmt.Errorf("xq: empty phrase in Score clause")
		}
		var l index.List
		if len(terms) == 1 {
			l = e.Index.List(e.Index.Tokenizer().Normalize(terms[0]))
		} else {
			pf := &exec.PhraseFinder{Index: e.Index, Phrase: terms, Guard: e.Guard}
			ms, err := exec.CollectPhrase(pf.Run)
			if err != nil {
				return err
			}
			l = index.NewRawList(exec.PhrasePostings(ms))
		}
		lists = append(lists, l)
		weights = append(weights, w)
		names = append(names, phrase)
		return nil
	}
	for _, ph := range q.Score.Primary {
		if err := add(ph, q.Score.PrimaryWeight); err != nil {
			return nil, err
		}
	}
	for _, ph := range q.Score.Secondary {
		if err := add(ph, q.Score.SecondaryWeight); err != nil {
			return nil, err
		}
	}

	tj := &exec.TermJoin{
		Index: e.Index,
		Acc:   acc,
		Query: exec.TermQuery{
			Terms:  names,
			Lists:  lists,
			Scorer: weightedScorer(weights),
		},
		Guard: e.Guard,
	}
	scored, err := exec.Collect(tj.Run)
	if err != nil {
		return nil, err
	}
	// Keep elements inside this document and sort into document order.
	inDoc := scored[:0]
	for _, n := range scored {
		if n.Doc == doc.ID {
			inDoc = append(inDoc, n)
		}
	}
	sort.Slice(inDoc, func(i, j int) bool { return inDoc[i].Ord < inDoc[j].Ord })

	var results []Result
	for _, anchor := range anchors {
		end := doc.SubtreeEnd(anchor)
		// Scored elements within the anchor subtree, document order.
		lo := sort.Search(len(inDoc), func(i int) bool { return inDoc[i].Ord >= anchor })
		hi := sort.Search(len(inDoc), func(i int) bool { return inDoc[i].Ord >= end })
		window := inDoc[lo:hi]
		if q.Pick == nil {
			for _, n := range window {
				results = append(results, Result{Doc: doc.ID, Ord: n.Ord, Score: n.Score})
			}
			continue
		}
		threshold := 0.8
		if q.Pick.HasThresh {
			threshold = q.Pick.Threshold
		}
		stream := make([]exec.PickNode, len(window))
		for i, n := range window {
			rec := doc.Nodes[n.Ord]
			stream[i] = exec.PickNode{
				Ord:      n.Ord,
				Start:    rec.Start,
				End:      rec.End,
				Level:    rec.Level,
				Score:    n.Score,
				HasScore: true,
			}
		}
		picked, err := exec.StackPickGuarded(stream, exec.DefaultPickFuncs(threshold), e.Guard)
		if err != nil {
			return nil, err
		}
		for _, p := range picked {
			results = append(results, Result{Doc: doc.ID, Ord: p.Ord, Score: p.Score})
		}
	}
	return results, nil
}

// scoreAnchorsDirectly scores each anchor element on its whole subtree
// content (no granularity expansion).
func (e *Engine) scoreAnchorsDirectly(acc *storage.Accessor, doc *storage.Document, anchors []int32, q *Query) ([]Result, error) {
	var results []Result
	tok := e.Index.Tokenizer()
	for _, ord := range anchors {
		if err := e.Guard.Tick(); err != nil {
			return nil, err
		}
		text := acc.SubtreeText(doc.ID, ord)
		score := 0.0
		for _, ph := range q.Score.Primary {
			score += q.Score.PrimaryWeight * float64(countPhraseIn(tok, text, ph))
		}
		for _, ph := range q.Score.Secondary {
			score += q.Score.SecondaryWeight * float64(countPhraseIn(tok, text, ph))
		}
		results = append(results, Result{Doc: doc.ID, Ord: ord, Score: score})
	}
	return results, nil
}

func countPhraseIn(tok *tokenize.Tokenizer, text, phrase string) int {
	terms := tok.SplitPhrase(phrase)
	switch len(terms) {
	case 0:
		return 0
	case 1:
		return tok.Count(text, terms[0])
	default:
		return tok.CountPhrase(text, terms)
	}
}

// weightedScorer builds a per-pseudo-term weighted-sum scorer.
func weightedScorer(weights []float64) exec.Scorer {
	return exec.DefaultScorer{
		SimpleFn: scoring.SimpleScorer{Weights: weights},
	}
}

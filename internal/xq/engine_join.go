package xq

import (
	"fmt"
	"sort"

	"repro/internal/scoring"
	"repro/internal/storage"
)

// evalJoin evaluates the Query 3 shape (Fig. 10): two document-bound For
// clauses joined by a similarity-scored Let condition, an optional Where
// threshold on the join score, a third For binding result components
// within the left side, ScoreFoo/Pick over the components, and a ScoreBar
// combination of the join score with the component score.
//
// The required clause pattern is
//
//	For $a in document("L")…          (left side, structural predicates ok)
//	For $b in document("R")…          (right side)
//	Let $sim := ScoreSim($a/key, $b/key)
//	Where $sim > V                    (optional)
//	For $d in $a/descendant-or-self::*
//	Score $d using ScoreFoo($d, {…}, {…})
//	Pick $d using PickFoo($d)         (optional)
//	Score $r using ScoreBar($sim, $d)
//	Sortby(score) / Threshold $r/@score … (optional)
func (e *Engine) evalJoin(q *Query) ([]Result, error) {
	if len(q.Fors) != 3 {
		return nil, fmt.Errorf("xq: join queries need exactly three For clauses (left, right, component), got %d", len(q.Fors))
	}
	left, right, comp := q.Fors[0], q.Fors[1], q.Fors[2]
	if left.Path.Document == "" || right.Path.Document == "" {
		return nil, fmt.Errorf("xq: the first two For clauses of a join must bind documents")
	}
	if comp.Path.BaseVar != left.Var {
		return nil, fmt.Errorf("xq: the component For must be relative to $%s, got %q", left.Var, comp.Path.BaseVar)
	}
	if q.Let == nil {
		return nil, fmt.Errorf("xq: join queries need a Let $sim := ScoreSim(...) clause")
	}
	if q.Let.LeftVar != left.Var || q.Let.RightVar != right.Var {
		return nil, fmt.Errorf("xq: ScoreSim must reference $%s and $%s", left.Var, right.Var)
	}
	if q.Where != nil && q.Where.Var != q.Let.Var {
		return nil, fmt.Errorf("xq: Where must reference the Let variable $%s", q.Let.Var)
	}
	if q.Score == nil {
		return nil, fmt.Errorf("xq: join queries need a Score … using ScoreFoo clause on $%s", comp.Var)
	}
	if q.Score.Var != comp.Var {
		return nil, fmt.Errorf("xq: ScoreFoo must score the component variable $%s", comp.Var)
	}
	if q.Combine == nil {
		return nil, fmt.Errorf("xq: join queries need a Score … using ScoreBar($%s, $%s) clause", q.Let.Var, comp.Var)
	}
	if q.Combine.SimVar != q.Let.Var || q.Combine.CompVar != comp.Var {
		return nil, fmt.Errorf("xq: ScoreBar must combine $%s with $%s", q.Let.Var, comp.Var)
	}

	leftDoc := e.Store.DocByName(left.Path.Document)
	if leftDoc == nil {
		return nil, fmt.Errorf("xq: document %q not loaded", left.Path.Document)
	}
	rightDoc := e.Store.DocByName(right.Path.Document)
	if rightDoc == nil {
		return nil, fmt.Errorf("xq: document %q not loaded", right.Path.Document)
	}
	acc := e.Guard.Attach(storage.NewAccessor(e.Store))
	defer e.noteStats(acc)

	leftAnchors, leftExpand, err := e.evalSteps(acc, leftDoc, left.Path.Steps)
	if err != nil {
		return nil, err
	}
	if leftExpand {
		return nil, fmt.Errorf("xq: the left For of a join must bind elements, not descendant-or-self::*")
	}
	rightAnchors, rightExpand, err := e.evalSteps(acc, rightDoc, right.Path.Steps)
	if err != nil {
		return nil, err
	}
	if rightExpand {
		return nil, fmt.Errorf("xq: the right For of a join must bind elements, not descendant-or-self::*")
	}

	// Component binding: $a/descendant-or-self::* (further steps are not
	// supported in the join shape).
	if len(comp.Path.Steps) != 1 || comp.Path.Steps[0].Kind != StepDescendantOrSelf {
		return nil, fmt.Errorf("xq: the component For must be $%s/descendant-or-self::*", left.Var)
	}

	// Score and pick the components of each left anchor once.
	components, err := e.scoreAndPick(acc, leftDoc, leftAnchors, true, q)
	if err != nil {
		return nil, err
	}
	// Group components by their containing anchor (anchors are disjoint in
	// document order; recover by region containment).
	type anchorRange struct {
		ord      int32
		end      int32
		children []Result
	}
	ranges := make([]*anchorRange, 0, len(leftAnchors))
	for _, a := range leftAnchors {
		ranges = append(ranges, &anchorRange{ord: a, end: leftDoc.SubtreeEnd(a)})
	}
	for _, c := range components {
		for _, r := range ranges {
			if c.Ord >= r.ord && c.Ord < r.end {
				r.children = append(r.children, c)
				break
			}
		}
	}

	// Join: similarity between the anchors' key children (best pair when
	// several keys exist), Where-filtered, combined per component with
	// ScoreBar.
	tok := e.Index.Tokenizer()
	var out []Result
	for _, r := range ranges {
		if len(r.children) == 0 {
			continue
		}
		leftKeys, err := e.children(acc, leftDoc, []int32{r.ord}, q.Let.LeftKey)
		if err != nil {
			return nil, err
		}
		if len(leftKeys) == 0 {
			continue
		}
		for _, b := range rightAnchors {
			if err := e.Guard.Tick(); err != nil {
				return nil, err
			}
			rightKeys, err := e.children(acc, rightDoc, []int32{b}, q.Let.RightKey)
			if err != nil {
				return nil, err
			}
			if len(rightKeys) == 0 {
				continue
			}
			sim := 0.0
			for _, lk := range leftKeys {
				lt := directTextOf(acc, leftDoc, lk)
				for _, rk := range rightKeys {
					rt := directTextOf(acc, rightDoc, rk)
					if s := simOf(tok, lt, rt); s > sim {
						sim = s
					}
				}
			}
			if q.Where != nil && !(sim > q.Where.Min) {
				continue
			}
			rightNode := acc.Materialize(rightDoc.ID, b)
			for _, c := range r.children {
				score := scoring.ScoreBar(sim, c.Score)
				out = append(out, Result{
					Doc:   leftDoc.ID,
					Ord:   c.Ord,
					Score: score,
					Sim:   sim,
					Right: rightNode,
				})
			}
		}
	}

	// Threshold on the combined score, then sort and stop-after.
	if q.Threshold != nil {
		if q.Threshold.Var != q.Combine.Var && q.Threshold.Var != comp.Var {
			return nil, fmt.Errorf("xq: Threshold must reference $%s or $%s", q.Combine.Var, comp.Var)
		}
		if q.Threshold.HasMin {
			kept := out[:0]
			for _, r := range out {
				if r.Score > q.Threshold.MinScore {
					kept = append(kept, r)
				}
			}
			out = kept
		}
	}
	if q.SortBy || (q.Threshold != nil && q.Threshold.HasStopK) {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	}
	if q.Threshold != nil && q.Threshold.HasStopK && len(out) > q.Threshold.StopK {
		out = out[:q.Threshold.StopK]
	}
	for i := range out {
		if err := e.Guard.Tick(); err != nil {
			return nil, err
		}
		out[i].Node = acc.Materialize(out[i].Doc, out[i].Ord)
	}
	return out, nil
}

// simOf counts the distinct shared words of two key texts — ScoreSim of
// Fig. 9 over raw strings.
func simOf(tok interface{ Terms(string) []string }, a, b string) float64 {
	set := map[string]bool{}
	for _, t := range tok.Terms(a) {
		set[t] = true
	}
	seen := map[string]bool{}
	n := 0
	for _, t := range tok.Terms(b) {
		if set[t] && !seen[t] {
			seen[t] = true
			n++
		}
	}
	return float64(n)
}

package xq

import (
	"math"
	"testing"

	"repro/internal/fixture"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/tokenize"
)

func newEngine(t testing.TB) *Engine {
	t.Helper()
	s := storage.NewStore()
	if _, err := s.AddTree("articles.xml", mustParse(fixture.ArticlesXML)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddTree("reviews.xml", mustParse(fixture.ReviewsXML)); err != nil {
		t.Fatal(err)
	}
	return &Engine{Store: s, Index: index.Build(s, tokenize.NewStemming())}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEvalQuery2EndToEnd(t *testing.T) {
	e := newEngine(t)
	results, err := e.EvalString(query2Src)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// After Score + Pick, only the chapter (5.0) survives the > 4
	// threshold: the picked set is {chapter 5.0, section-title 0.8, p 0.8,
	// p 1.4, p 1.4}.
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1: %+v", len(results), results)
	}
	top := results[0]
	if top.Node == nil || top.Node.Tag != "chapter" {
		t.Fatalf("top = %v, want the Search-and-Retrieval chapter", top.Node)
	}
	if !approx(top.Score, 5.0) {
		t.Errorf("top score = %v, want 5.0", top.Score)
	}
	if top.Node.FirstTag("section-title") == nil {
		t.Errorf("materialized chapter lost its content")
	}
}

func TestEvalQuery1EndToEnd(t *testing.T) {
	e := newEngine(t)
	results, err := e.EvalString(query1Src)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// Query 1 lacks the author predicate but matches the same article; the
	// result is identical to Query 2's.
	if len(results) != 1 || results[0].Node.Tag != "chapter" {
		t.Fatalf("results = %+v", results)
	}
}

func TestEvalScoreWithoutPick(t *testing.T) {
	e := newEngine(t)
	results, err := e.EvalString(`
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
		Sortby(score)
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Eleven elements carry non-zero scores (Fig. 6's node set minus
	// sname), topped by the article at 5.6 and the chapter at 5.0.
	if len(results) != 11 {
		t.Fatalf("results = %d, want 11", len(results))
	}
	if results[0].Node.Tag != "article" || !approx(results[0].Score, 5.6) {
		t.Errorf("first = %s[%v]", results[0].Node.Tag, results[0].Score)
	}
	if results[1].Node.Tag != "chapter" || !approx(results[1].Score, 5.0) {
		t.Errorf("second = %s[%v]", results[1].Node.Tag, results[1].Score)
	}
}

func TestEvalStopAfterWithoutMin(t *testing.T) {
	e := newEngine(t)
	results, err := e.EvalString(`
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {})
		Sortby(score)
		Threshold $a/@score stop after 3
	`)
	if err == nil {
		// Threshold without > V but with stop-after parses and keeps 3.
		if len(results) != 3 {
			t.Fatalf("results = %d, want 3", len(results))
		}
		for i := 1; i < len(results); i++ {
			if results[i].Score > results[i-1].Score {
				t.Errorf("not sorted at %d", i)
			}
		}
	} else {
		t.Fatalf("Eval: %v", err)
	}
}

func TestEvalStructuralOnly(t *testing.T) {
	e := newEngine(t)
	results, err := e.EvalString(`For $c in document("articles.xml")//chapter`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("chapters = %d, want 3", len(results))
	}
	for _, r := range results {
		if r.Node.Tag != "chapter" || r.Score != 0 {
			t.Errorf("bad structural result %+v", r)
		}
	}
}

func TestEvalChildStepAndPredicates(t *testing.T) {
	e := newEngine(t)
	// Child step.
	results, err := e.EvalString(`For $t in document("articles.xml")//author/sname`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Node.AllText() != "Doe" {
		t.Fatalf("sname results = %+v", results)
	}
	// Attribute predicate.
	results, err = e.EvalString(`For $r in document("reviews.xml")//review[@id="2"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("review[@id=2] = %d results", len(results))
	}
	if title := results[0].Node.FirstTag("title"); title == nil || title.AllText() != "WWW Technologies" {
		t.Errorf("wrong review: %v", results[0].Node)
	}
	// Existence predicate.
	results, err = e.EvalString(`For $r in document("reviews.xml")//review[rating]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Errorf("review[rating] = %d, want 2", len(results))
	}
	// Failing value predicate.
	results, err = e.EvalString(`For $a in document("articles.xml")//article[/author/sname/text()="Smith"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("Smith predicate should match nothing, got %d", len(results))
	}
}

func TestEvalWildcardSteps(t *testing.T) {
	e := newEngine(t)
	results, err := e.EvalString(`For $x in document("articles.xml")//section/*`)
	if err != nil {
		t.Fatal(err)
	}
	// Children of the three sections: 3 section-titles + 3 paragraphs.
	if len(results) != 6 {
		t.Errorf("section children = %d, want 6", len(results))
	}
}

func TestEvalErrors(t *testing.T) {
	e := newEngine(t)
	if _, err := e.EvalString(`For $a in document("missing.xml")//x`); err == nil {
		t.Errorf("missing document should error")
	}
	if _, err := e.EvalString(`For $a in document("articles.xml")/descendant-or-self::*/p`); err == nil {
		t.Errorf("non-final ad* should error")
	}
	if _, err := e.EvalString(`For $a in document("articles.xml")//article Score $b using ScoreFoo($b, {"x"}, {})`); err == nil {
		t.Errorf("mismatched score variable should error")
	}
	if _, err := e.EvalString(`not a query`); err == nil {
		t.Errorf("garbage should error")
	}
}

func TestEvalScoreAnchorsDirectly(t *testing.T) {
	e := newEngine(t)
	// No descendant-or-self: each chapter scored on its own subtree.
	results, err := e.EvalString(`
		For $c in document("articles.xml")//chapter
		Score $c using ScoreFoo($c, {"search engine"}, {"internet", "information retrieval"})
		Sortby(score)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	if !approx(results[0].Score, 5.0) {
		t.Errorf("best chapter score = %v, want 5.0", results[0].Score)
	}
	if !approx(results[1].Score, 0) || !approx(results[2].Score, 0) {
		t.Errorf("other chapters should score 0: %v, %v", results[1].Score, results[2].Score)
	}
}

func TestEvalDeclarativeWeights(t *testing.T) {
	e := newEngine(t)
	// Doubling the primary weight doubles the primary contribution: the
	// first paragraph (one "search engine" occurrence) scores 1.6.
	results, err := e.EvalString(`
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"} weight 1.6, {})
		Sortby(score)
	`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range results {
		if r.Node.Tag == "p" && approx(r.Score, 1.6) {
			found = true
		}
		if r.Node.Tag == "p" && approx(r.Score, 0.8) {
			t.Errorf("default weight used despite override")
		}
	}
	if !found {
		t.Errorf("weighted paragraph score missing: %+v", results)
	}
	// Zero secondary weight silences secondary phrases entirely.
	results, err = e.EvalString(`
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"} weight 0)
		Sortby(score)
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		// Elements whose only matches are secondary phrases (the
		// article-title's "internet") surface with score 0, never positive.
		if r.Node.Tag == "article-title" && r.Score != 0 {
			t.Errorf("zero-weighted secondary still contributed: %+v", r)
		}
	}
}

func TestEvalUnknownPhrase(t *testing.T) {
	e := newEngine(t)
	results, err := e.EvalString(`
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"quantum chromodynamics"}, {})
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("unknown phrase produced %d results", len(results))
	}
}

package xq

import (
	"fmt"
	"strings"

	"repro/internal/exec"
)

// Explain renders the physical plan the engine would execute for the
// query, without running it: the structural access path, the score-
// generation pseudo-terms with their posting-list sizes (phrases are
// marked as PhraseFinder-derived), the Pick configuration, and the output
// operators. Useful for understanding why a query is fast or slow.
func (e *Engine) Explain(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	if len(q.Fors) > 1 {
		return e.explainJoin(q, &sb)
	}
	return e.explainSingle(q, &sb)
}

func (e *Engine) explainSingle(q *Query, sb *strings.Builder) (string, error) {
	f := q.Fors[0]
	doc := e.Store.DocByName(f.Path.Document)
	if doc == nil {
		return "", fmt.Errorf("xq: document %q not loaded", f.Path.Document)
	}
	fmt.Fprintf(sb, "plan for $%s over document(%q):\n", f.Var, f.Path.Document)
	expand := false
	for _, s := range f.Path.Steps {
		switch s.Kind {
		case StepDescendant:
			fmt.Fprintf(sb, "  extent scan //%s (%d elements)\n", s.Name, len(e.tagExtent(doc, s.Name)))
		case StepChild:
			fmt.Fprintf(sb, "  child step /%s\n", s.Name)
		case StepPredicate:
			fmt.Fprintf(sb, "  filter %s (navigational)\n", s.Pred)
		case StepDescendantOrSelf:
			expand = true
			fmt.Fprintf(sb, "  expand descendant-or-self::* (result granularities)\n")
		}
	}
	if q.Score != nil {
		fmt.Fprintf(sb, "  score via %s:\n", scoreMethod(expand))
		e.explainPhrases(sb, q.Score)
	}
	if q.Pick != nil {
		th := 0.8
		if q.Pick.HasThresh {
			th = q.Pick.Threshold
		}
		fmt.Fprintf(sb, "  pick: StackPick, relevance threshold %g, level-parity classes\n", th)
	}
	e.explainOutput(sb, q)
	return sb.String(), nil
}

func scoreMethod(expand bool) string {
	if expand {
		return "TermJoin (stack-based merge over posting lists)"
	}
	return "per-anchor subtree scan"
}

func (e *Engine) explainPhrases(sb *strings.Builder, sc *ScoreClause) {
	describe := func(ph string, w float64) {
		terms := e.Index.Tokenizer().SplitPhrase(ph)
		switch len(terms) {
		case 0:
			fmt.Fprintf(sb, "    %q: empty phrase\n", ph)
		case 1:
			fmt.Fprintf(sb, "    term %q: %d postings, weight %g\n",
				terms[0], e.Index.TermFreq(terms[0]), w)
		default:
			pf := &exec.PhraseFinder{Index: e.Index, Phrase: terms}
			ms, err := exec.CollectPhrase(pf.Run)
			n := 0
			if err == nil {
				n = len(ms)
			}
			fmt.Fprintf(sb, "    phrase %q: PhraseFinder over %d terms → %d pseudo-postings, weight %g\n",
				ph, len(terms), n, w)
		}
	}
	for _, ph := range sc.Primary {
		describe(ph, sc.PrimaryWeight)
	}
	for _, ph := range sc.Secondary {
		describe(ph, sc.SecondaryWeight)
	}
}

func (e *Engine) explainOutput(sb *strings.Builder, q *Query) {
	if q.Threshold != nil && q.Threshold.HasMin {
		fmt.Fprintf(sb, "  threshold: score > %g\n", q.Threshold.MinScore)
	}
	if q.SortBy {
		fmt.Fprintf(sb, "  sort: by score, descending\n")
	}
	if q.Threshold != nil && q.Threshold.HasStopK {
		fmt.Fprintf(sb, "  limit: stop after %d\n", q.Threshold.StopK)
	}
}

func (e *Engine) explainJoin(q *Query, sb *strings.Builder) (string, error) {
	if len(q.Fors) != 3 || q.Let == nil {
		return "", fmt.Errorf("xq: unsupported join shape (see evalJoin requirements)")
	}
	left, right, comp := q.Fors[0], q.Fors[1], q.Fors[2]
	fmt.Fprintf(sb, "join plan:\n")
	fmt.Fprintf(sb, "  left  $%s: document(%q) %s\n", left.Var, left.Path.Document, stepsString(left.Path.Steps))
	fmt.Fprintf(sb, "  right $%s: document(%q) %s\n", right.Var, right.Path.Document, stepsString(right.Path.Steps))
	fmt.Fprintf(sb, "  join condition: ScoreSim($%s/%s, $%s/%s)",
		q.Let.LeftVar, q.Let.LeftKey, q.Let.RightVar, q.Let.RightKey)
	if q.Where != nil {
		fmt.Fprintf(sb, " filtered to > %g", q.Where.Min)
	}
	sb.WriteString("\n")
	fmt.Fprintf(sb, "  components $%s: descendant-or-self of $%s, scored via TermJoin:\n", comp.Var, left.Var)
	if q.Score != nil {
		e.explainPhrases(sb, q.Score)
	}
	if q.Pick != nil {
		fmt.Fprintf(sb, "  pick: StackPick per left anchor\n")
	}
	if q.Combine != nil {
		fmt.Fprintf(sb, "  combine: ScoreBar($%s, $%s)\n", q.Combine.SimVar, q.Combine.CompVar)
	}
	e.explainOutput(sb, q)
	return sb.String(), nil
}

func stepsString(steps []Step) string {
	var sb strings.Builder
	for _, s := range steps {
		sb.WriteString(s.String())
	}
	return sb.String()
}

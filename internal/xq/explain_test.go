package xq

import (
	"strings"
	"testing"
)

func TestExplainSingle(t *testing.T) {
	e := newEngine(t)
	out, err := e.Explain(query2Src)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"extent scan //article (1 elements)",
		"filter",
		"descendant-or-self",
		"TermJoin",
		`phrase "search engine": PhraseFinder over 2 terms`,
		`term "internet": 3 postings, weight 0.6`,
		"pick: StackPick, relevance threshold 0.8",
		"threshold: score > 4",
		"sort: by score",
		"limit: stop after 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainJoin(t *testing.T) {
	e := newEngine(t)
	out, err := e.Explain(query3Src)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"join plan:",
		`left  $a: document("articles.xml")`,
		`right $b: document("reviews.xml")`,
		"ScoreSim($a/article-title, $b/title) filtered to > 1",
		"components $d",
		"combine: ScoreBar($sim, $d)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainErrors(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Explain("garbage"); err == nil {
		t.Errorf("garbage should error")
	}
	if _, err := e.Explain(`For $a in document("missing.xml")//x`); err == nil {
		t.Errorf("missing document should error")
	}
}

package xq

import (
	"testing"
)

// query3Src is the paper's Query 3 in the dialect's join shape: find
// relevant components in articles by "Doe", and for the containing
// articles find reviews with similar titles; scores combine title
// similarity with component relevance through ScoreBar.
const query3Src = `
For $a in document("articles.xml")//article[/author/sname/text()="Doe"]
For $b in document("reviews.xml")//review
Let $sim := ScoreSim($a/article-title, $b/title)
Where $sim > 1
For $d in $a/descendant-or-self::*
Score $d using ScoreFoo($d, {"search engine"}, {"internet", "information retrieval"})
Pick $d using PickFoo($d)
Score $r using ScoreBar($sim, $d)
Return <tix_prod_root><score>$r/@score</score>{ $d }{ $b }</tix_prod_root>
Sortby(score)
`

func TestParseQuery3(t *testing.T) {
	q, err := Parse(query3Src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Fors) != 3 {
		t.Fatalf("Fors = %d", len(q.Fors))
	}
	if q.Fors[1].Path.Document != "reviews.xml" {
		t.Errorf("right doc = %q", q.Fors[1].Path.Document)
	}
	if q.Fors[2].Path.BaseVar != "a" {
		t.Errorf("component base = %q", q.Fors[2].Path.BaseVar)
	}
	if q.Let == nil || q.Let.Var != "sim" || q.Let.LeftKey != "article-title" || q.Let.RightKey != "title" {
		t.Fatalf("let = %+v", q.Let)
	}
	if q.Where == nil || q.Where.Min != 1 {
		t.Fatalf("where = %+v", q.Where)
	}
	if q.Score == nil || q.Score.Var != "d" {
		t.Fatalf("score = %+v", q.Score)
	}
	if q.Pick == nil || q.Pick.Var != "d" {
		t.Fatalf("pick = %+v", q.Pick)
	}
	if q.Combine == nil || q.Combine.Var != "r" || q.Combine.SimVar != "sim" || q.Combine.CompVar != "d" {
		t.Fatalf("combine = %+v", q.Combine)
	}
	// Round trip.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", q.String(), q2.String())
	}
}

func TestEvalQuery3EndToEnd(t *testing.T) {
	e := newEngine(t)
	results, err := e.EvalString(query3Src)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if len(results) == 0 {
		t.Fatalf("no results")
	}
	// Only review 1 ("Internet Technologies", sim 2) passes Where sim > 1;
	// the picked components are the chapter (5.0), the section-title (0.8)
	// and the three paragraphs (0.8, 1.4, 1.4). Best combined result:
	// chapter with 2 + 5.0 = 7.0.
	best := results[0]
	if best.Node.Tag != "chapter" || !approx(best.Score, 7.0) || !approx(best.Sim, 2) {
		t.Errorf("best = <%s> score %.2f sim %.0f, want chapter 7.0 sim 2", best.Node.Tag, best.Score, best.Sim)
	}
	if best.Right == nil || best.Right.Tag != "review" {
		t.Fatalf("right side missing: %v", best.Right)
	}
	if id, _ := best.Right.Attr("id"); id != "1" {
		t.Errorf("joined review id = %s, want 1", id)
	}
	// Exactly 5 picked components × 1 surviving review.
	if len(results) != 5 {
		t.Errorf("results = %d, want 5", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Errorf("not sorted at %d", i)
		}
		if id, _ := results[i].Right.Attr("id"); id != "1" {
			t.Errorf("result %d joined wrong review", i)
		}
	}
}

func TestEvalQuery3WithoutWhere(t *testing.T) {
	e := newEngine(t)
	// Without the Where clause, review 2 ("WWW Technologies", sim 1) also
	// joins: 5 components × 2 reviews = 10 results.
	results, err := e.EvalString(`
		For $a in document("articles.xml")//article
		For $b in document("reviews.xml")//review
		Let $sim := ScoreSim($a/article-title, $b/title)
		For $d in $a/descendant-or-self::*
		Score $d using ScoreFoo($d, {"search engine"}, {"internet", "information retrieval"})
		Pick $d using PickFoo($d)
		Score $r using ScoreBar($sim, $d)
		Sortby(score)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("results = %d, want 10", len(results))
	}
}

func TestEvalQuery3Threshold(t *testing.T) {
	e := newEngine(t)
	results, err := e.EvalString(query3Src + ` Threshold $r/@score > 2 stop after 2`)
	if err != nil {
		// Threshold comes after Sortby in the grammar; rebuild the query.
		results, err = e.EvalString(`
			For $a in document("articles.xml")//article
			For $b in document("reviews.xml")//review
			Let $sim := ScoreSim($a/article-title, $b/title)
			Where $sim > 1
			For $d in $a/descendant-or-self::*
			Score $d using ScoreFoo($d, {"search engine"}, {"internet", "information retrieval"})
			Pick $d using PickFoo($d)
			Score $r using ScoreBar($sim, $d)
			Sortby(score)
			Threshold $r/@score > 2 stop after 2
		`)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if r.Score <= 2 {
			t.Errorf("threshold leak: %f", r.Score)
		}
	}
}

func TestEvalJoinShapeErrors(t *testing.T) {
	e := newEngine(t)
	cases := []string{
		// Two Fors only.
		`For $a in document("articles.xml")//article
		 For $b in document("reviews.xml")//review
		 Let $sim := ScoreSim($a/article-title, $b/title)`,
		// Missing Let.
		`For $a in document("articles.xml")//article
		 For $b in document("reviews.xml")//review
		 For $d in $a/descendant-or-self::*
		 Score $d using ScoreFoo($d, {"x"}, {})
		 Score $r using ScoreBar($sim, $d)`,
		// Component not relative to $a.
		`For $a in document("articles.xml")//article
		 For $b in document("reviews.xml")//review
		 Let $sim := ScoreSim($a/article-title, $b/title)
		 For $d in $b/descendant-or-self::*
		 Score $d using ScoreFoo($d, {"x"}, {})
		 Score $r using ScoreBar($sim, $d)`,
		// Missing ScoreBar.
		`For $a in document("articles.xml")//article
		 For $b in document("reviews.xml")//review
		 Let $sim := ScoreSim($a/article-title, $b/title)
		 For $d in $a/descendant-or-self::*
		 Score $d using ScoreFoo($d, {"x"}, {})`,
		// ScoreBar referencing the wrong vars.
		`For $a in document("articles.xml")//article
		 For $b in document("reviews.xml")//review
		 Let $sim := ScoreSim($a/article-title, $b/title)
		 For $d in $a/descendant-or-self::*
		 Score $d using ScoreFoo($d, {"x"}, {})
		 Score $r using ScoreBar($d, $sim)`,
		// Single-For query with a Let clause.
		`For $a in document("articles.xml")//article
		 Let $sim := ScoreSim($a/article-title, $a/article-title)`,
	}
	for i, src := range cases {
		if _, err := e.EvalString(src); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

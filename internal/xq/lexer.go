// Package xq implements the extended-XQuery dialect of Sec. 4 of the
// paper: XQuery FLWR syntax augmented with Score, Pick, Sortby and
// Threshold clauses, as in Fig. 10. The dialect covers all three example
// queries: the single-For shape of Queries 1 and 2, and the multi-For
// similarity-join shape of Query 3 (Let/ScoreSim, Where, ScoreBar).
//
// Grammar (case-insensitive keywords):
//
//	query     := for+ let? where? for* scorefoo? pick? scorebar?
//	             return? sortby? threshold?
//	for       := "For" Var ("in" | ":=") path
//	path      := ("document" "(" STRING ")" | Var) step+
//	step      := "//" name | "/" name | "/descendant-or-self::*" | pred
//	pred      := "[" relpath ("=" STRING)? "]"
//	relpath   := "/"? name ("/" name)* ("/text()")?  |  "@" name
//	let       := "Let" Var ":=" "ScoreSim" "(" Var "/" name "," Var "/" name ")"
//	where     := "Where" Var ">" NUMBER
//	scorefoo  := "Score" Var "using" "ScoreFoo" "(" Var "," set "," set ")"
//	set       := "{" (STRING ("," STRING)*)? "}" ("weight" NUMBER)?
//	pick      := "Pick" Var "using" "PickFoo" "(" Var ("," NUMBER)? ")"
//	scorebar  := "Score" Var "using" "ScoreBar" "(" Var "," Var ")"
//	return    := "Return" <raw template until Sortby/Threshold/EOF>
//	sortby    := "Sortby" "(" "score" ")"
//	threshold := "Threshold" Var "/@score" (">" NUMBER)? ("stop" "after" NUMBER)?
package xq

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexer token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokVar    // $name
	tokString // "…" or '…' (typographic quotes accepted)
	tokNumber
	tokSlash      // /
	tokSlashSlash // //
	tokLParen     // (
	tokRParen     // )
	tokLBracket   // [
	tokRBracket   // ]
	tokLBrace     // {
	tokRBrace     // }
	tokComma      // ,
	tokEq         // =
	tokGt         // >
	tokLt         // <
	tokAt         // @
	tokColonColon // ::
	tokStar       // *
	tokAssign     // :=
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// next returns the next token. Quoted strings accept straight single and
// double quotes as well as the doubled typographic quotes the paper's
// figures use (‘‘…’’).
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	// Typographic quote pairs.
	for _, q := range []struct{ open, close string }{
		{"‘‘", "’’"}, {"“", "”"},
	} {
		if strings.HasPrefix(l.src[l.pos:], q.open) {
			end := strings.Index(l.src[l.pos+len(q.open):], q.close)
			if end < 0 {
				return token{}, fmt.Errorf("xq: unterminated string at offset %d", start)
			}
			text := l.src[l.pos+len(q.open) : l.pos+len(q.open)+end]
			l.pos += len(q.open) + end + len(q.close)
			return token{kind: tokString, text: text, pos: start}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '"', '\'':
		end := strings.IndexByte(l.src[l.pos+1:], c)
		if end < 0 {
			return token{}, fmt.Errorf("xq: unterminated string at offset %d", start)
		}
		text := l.src[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return token{kind: tokString, text: text, pos: start}, nil
	case '$':
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
			l.pos++
		}
		if l.pos == s {
			return token{}, fmt.Errorf("xq: empty variable name at offset %d", start)
		}
		return token{kind: tokVar, text: l.src[s:l.pos], pos: start}, nil
	case '/':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '/' {
			l.pos++
			return token{kind: tokSlashSlash, text: "//", pos: start}, nil
		}
		return token{kind: tokSlash, text: "/", pos: start}, nil
	case ':':
		if strings.HasPrefix(l.src[l.pos:], "::") {
			l.pos += 2
			return token{kind: tokColonColon, text: "::", pos: start}, nil
		}
		if strings.HasPrefix(l.src[l.pos:], ":=") {
			l.pos += 2
			return token{kind: tokAssign, text: ":=", pos: start}, nil
		}
		return token{}, fmt.Errorf("xq: unexpected ':' at offset %d", start)
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case '{':
		l.pos++
		return token{kind: tokLBrace, text: "{", pos: start}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, text: "}", pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case '>':
		l.pos++
		return token{kind: tokGt, text: ">", pos: start}, nil
	case '<':
		l.pos++
		return token{kind: tokLt, text: "<", pos: start}, nil
	case '@':
		l.pos++
		return token{kind: tokAt, text: "@", pos: start}, nil
	case '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	}
	if unicode.IsDigit(rune(c)) {
		s := l.pos
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[s:l.pos], pos: start}, nil
	}
	if isIdentStart(rune(c)) {
		s := l.pos
		for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[s:l.pos], pos: start}, nil
	}
	return token{}, fmt.Errorf("xq: unexpected character %q at offset %d", c, start)
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// rest returns the raw remaining input from offset on (for the Return
// template), without tokenizing it.
func (l *lexer) rest() string { return l.src[l.pos:] }

// skipTo advances the raw position to off.
func (l *lexer) skipTo(off int) { l.pos = off }

package xq

import "repro/internal/xmltree"

// mustParse parses a literal test document, panicking on error — the
// test-only replacement for the removed xmltree.MustParse. Production
// load paths always report malformed XML as returned errors.
func mustParse(src string) *xmltree.Node {
	n, err := xmltree.ParseString(src)
	if err != nil {
		panic(err)
	}
	return n
}

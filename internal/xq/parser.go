package xq

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one extended-XQuery query.
func Parse(src string) (*Query, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, fmt.Errorf("xq: trailing input at offset %d: %q", p.cur.pos, p.cur.text)
	}
	return q, nil
}

type parser struct {
	lx  *lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

// keyword reports whether the current token is the given case-insensitive
// keyword identifier.
func (p *parser) keyword(kw string) bool {
	return p.cur.kind == tokIdent && strings.EqualFold(p.cur.text, kw)
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.cur.kind != kind {
		return token{}, fmt.Errorf("xq: expected %s at offset %d, found %q", what, p.cur.pos, p.cur.text)
	}
	t := p.cur
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("xq: expected %q at offset %d, found %q", kw, p.cur.pos, p.cur.text)
	}
	return p.advance()
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	for p.keyword("for") {
		fc, err := p.parseFor()
		if err != nil {
			return nil, err
		}
		q.Fors = append(q.Fors, fc)
	}
	if len(q.Fors) == 0 {
		return nil, fmt.Errorf("xq: query must start with a For clause")
	}
	if p.keyword("let") {
		lc, err := p.parseLet()
		if err != nil {
			return nil, err
		}
		q.Let = lc
	}
	if p.keyword("where") {
		wc, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		q.Where = wc
	}
	// A third For may follow the join condition (the paper's Query 3
	// binds $d after the product is thresholded).
	for p.keyword("for") {
		fc, err := p.parseFor()
		if err != nil {
			return nil, err
		}
		q.Fors = append(q.Fors, fc)
	}
	if p.keyword("score") {
		sc, cb, err := p.parseScoreDispatch()
		if err != nil {
			return nil, err
		}
		if cb != nil {
			q.Combine = cb
		} else {
			q.Score = sc
		}
	}
	if p.keyword("pick") {
		pk, err := p.parsePick()
		if err != nil {
			return nil, err
		}
		q.Pick = pk
	}
	// The Query 3 shape has a second Score clause (ScoreBar) after Pick.
	if p.keyword("score") {
		sc, cb, err := p.parseScoreDispatch()
		if err != nil {
			return nil, err
		}
		switch {
		case cb != nil && q.Combine == nil:
			q.Combine = cb
		case sc != nil && q.Score == nil:
			q.Score = sc
		default:
			return nil, fmt.Errorf("xq: duplicate Score clause")
		}
	}
	if p.keyword("return") {
		rc, err := p.parseReturn()
		if err != nil {
			return nil, err
		}
		q.Return = rc
	}
	if p.keyword("sortby") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		if !p.keyword("score") {
			return nil, fmt.Errorf("xq: only Sortby(score) is supported, found %q", p.cur.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		q.SortBy = true
	}
	if p.keyword("threshold") {
		th, err := p.parseThreshold()
		if err != nil {
			return nil, err
		}
		q.Threshold = th
	}
	return q, nil
}

// parseFor parses `For $v (in|:=) path`.
func (p *parser) parseFor() (ForClause, error) {
	var fc ForClause
	if err := p.advance(); err != nil { // consume "For"
		return fc, err
	}
	v, err := p.expect(tokVar, "variable")
	if err != nil {
		return fc, err
	}
	fc.Var = v.text
	// Accept both "in" and ":=" (the paper's Query 2 uses :=).
	if p.cur.kind == tokAssign {
		if err := p.advance(); err != nil {
			return fc, err
		}
	} else if err := p.expectKeyword("in"); err != nil {
		return fc, err
	}
	fc.Path, err = p.parsePath()
	return fc, err
}

// parseLet parses `Let $v := ScoreSim($a/key, $b/key)`.
func (p *parser) parseLet() (*LetClause, error) {
	if err := p.advance(); err != nil { // consume "Let"
		return nil, err
	}
	v, err := p.expect(tokVar, "variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign, ":="); err != nil {
		return nil, err
	}
	if !p.keyword("scoresim") {
		return nil, fmt.Errorf("xq: only ScoreSim is supported in Let, found %q", p.cur.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	lv, lk, err := p.parseVarKey()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	rv, rk, err := p.parseVarKey()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return &LetClause{Var: v.text, LeftVar: lv, LeftKey: lk, RightVar: rv, RightKey: rk}, nil
}

// parseVarKey parses `$v/name`.
func (p *parser) parseVarKey() (string, string, error) {
	v, err := p.expect(tokVar, "variable")
	if err != nil {
		return "", "", err
	}
	if _, err := p.expect(tokSlash, "/"); err != nil {
		return "", "", err
	}
	name, err := p.expect(tokIdent, "element name")
	if err != nil {
		return "", "", err
	}
	return v.text, name.text, nil
}

// parseWhere parses `Where $v > N`.
func (p *parser) parseWhere() (*WhereClause, error) {
	if err := p.advance(); err != nil { // consume "Where"
		return nil, err
	}
	v, err := p.expect(tokVar, "variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokGt, ">"); err != nil {
		return nil, err
	}
	num, err := p.expect(tokNumber, "comparison value")
	if err != nil {
		return nil, err
	}
	min, err := strconv.ParseFloat(num.text, 64)
	if err != nil {
		return nil, fmt.Errorf("xq: bad Where value %q: %w", num.text, err)
	}
	return &WhereClause{Var: v.text, Min: min}, nil
}

func (p *parser) parsePath() (PathExpr, error) {
	var out PathExpr
	if p.cur.kind == tokVar {
		out.BaseVar = p.cur.text
		if err := p.advance(); err != nil {
			return out, err
		}
	} else {
		if err := p.expectKeyword("document"); err != nil {
			return out, err
		}
		if _, err := p.expect(tokLParen, "("); err != nil {
			return out, err
		}
		doc, err := p.expect(tokString, "document name")
		if err != nil {
			return out, err
		}
		out.Document = doc.text
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return out, err
		}
	}
	for {
		switch p.cur.kind {
		case tokSlashSlash:
			if err := p.advance(); err != nil {
				return out, err
			}
			name, err := p.parseNameTest()
			if err != nil {
				return out, err
			}
			out.Steps = append(out.Steps, Step{Kind: StepDescendant, Name: name})
		case tokSlash:
			if err := p.advance(); err != nil {
				return out, err
			}
			if p.keyword("descendant-or-self") {
				if err := p.advance(); err != nil {
					return out, err
				}
				if _, err := p.expect(tokColonColon, "::"); err != nil {
					return out, err
				}
				if _, err := p.expect(tokStar, "*"); err != nil {
					return out, err
				}
				out.Steps = append(out.Steps, Step{Kind: StepDescendantOrSelf})
				continue
			}
			name, err := p.parseNameTest()
			if err != nil {
				return out, err
			}
			out.Steps = append(out.Steps, Step{Kind: StepChild, Name: name})
		case tokLBracket:
			pred, err := p.parsePredicate()
			if err != nil {
				return out, err
			}
			out.Steps = append(out.Steps, Step{Kind: StepPredicate, Pred: pred})
		default:
			if len(out.Steps) == 0 {
				return out, fmt.Errorf("xq: path after document(...) must have at least one step")
			}
			return out, nil
		}
	}
}

func (p *parser) parseNameTest() (string, error) {
	if p.cur.kind == tokStar {
		if err := p.advance(); err != nil {
			return "", err
		}
		return "*", nil
	}
	t, err := p.expect(tokIdent, "element name")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) parsePredicate() (*Predicate, error) {
	if _, err := p.expect(tokLBracket, "["); err != nil {
		return nil, err
	}
	pred := &Predicate{}
	if p.cur.kind == tokAt {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "attribute name")
		if err != nil {
			return nil, err
		}
		pred.Attr = name.text
	} else {
		// Optional leading slash.
		if p.cur.kind == tokSlash {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		for {
			if p.keyword("text") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if _, err := p.expect(tokLParen, "("); err != nil {
					return nil, err
				}
				if _, err := p.expect(tokRParen, ")"); err != nil {
					return nil, err
				}
				pred.Text = true
				break
			}
			name, err := p.expect(tokIdent, "element name")
			if err != nil {
				return nil, err
			}
			pred.Names = append(pred.Names, name.text)
			if p.cur.kind != tokSlash {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if len(pred.Names) == 0 {
			return nil, fmt.Errorf("xq: empty predicate path")
		}
	}
	if p.cur.kind == tokEq {
		if err := p.advance(); err != nil {
			return nil, err
		}
		val, err := p.expect(tokString, "comparison literal")
		if err != nil {
			return nil, err
		}
		pred.Value = val.text
	} else {
		pred.Exists = true
	}
	if _, err := p.expect(tokRBracket, "]"); err != nil {
		return nil, err
	}
	return pred, nil
}

// parseScoreDispatch parses `Score $v using FN(...)`, dispatching on the
// scoring function: ScoreFoo yields a ScoreClause, ScoreBar a
// CombineClause.
func (p *parser) parseScoreDispatch() (*ScoreClause, *CombineClause, error) {
	if err := p.advance(); err != nil { // consume "Score"
		return nil, nil, err
	}
	v, err := p.expect(tokVar, "variable")
	if err != nil {
		return nil, nil, err
	}
	if err := p.expectKeyword("using"); err != nil {
		return nil, nil, err
	}
	switch {
	case p.keyword("scorefoo"):
		sc, err := p.parseScoreFooArgs(v.text)
		return sc, nil, err
	case p.keyword("scorebar"):
		cb, err := p.parseScoreBarArgs(v.text)
		return nil, cb, err
	default:
		return nil, nil, fmt.Errorf("xq: unsupported scoring function %q (ScoreFoo and ScoreBar are supported)", p.cur.text)
	}
}

// parseScoreBarArgs parses `ScoreBar($sim, $comp)` after the keyword.
func (p *parser) parseScoreBarArgs(v string) (*CombineClause, error) {
	if err := p.advance(); err != nil { // consume "ScoreBar"
		return nil, err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	sim, err := p.expect(tokVar, "join-score variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	comp, err := p.expect(tokVar, "component variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return &CombineClause{Var: v, SimVar: sim.text, CompVar: comp.text}, nil
}

// parseScoreFooArgs parses `ScoreFoo($a, {…}, {…})` after the keyword.
func (p *parser) parseScoreFooArgs(v string) (*ScoreClause, error) {
	if err := p.advance(); err != nil { // consume "ScoreFoo"
		return nil, err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	arg, err := p.expect(tokVar, "variable argument")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	primary, wPrimary, err := p.parsePhraseSet(0.8)
	if err != nil {
		return nil, err
	}
	secondary := []string{}
	wSecondary := 0.6
	if p.cur.kind == tokComma {
		if err := p.advance(); err != nil {
			return nil, err
		}
		secondary, wSecondary, err = p.parsePhraseSet(0.6)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return &ScoreClause{
		Var: v, ArgVar: arg.text,
		Primary: primary, Secondary: secondary,
		PrimaryWeight: wPrimary, SecondaryWeight: wSecondary,
	}, nil
}

// parsePhraseSet parses "{phrase, …}" with an optional trailing
// "weight N" that overrides the set's default weight.
func (p *parser) parsePhraseSet(defaultWeight float64) ([]string, float64, error) {
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, 0, err
	}
	var out []string
	for p.cur.kind == tokString {
		out = append(out, p.cur.text)
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		if p.cur.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
	}
	if _, err := p.expect(tokRBrace, "}"); err != nil {
		return nil, 0, err
	}
	weight := defaultWeight
	if p.keyword("weight") {
		if err := p.advance(); err != nil {
			return nil, 0, err
		}
		num, err := p.expect(tokNumber, "weight value")
		if err != nil {
			return nil, 0, err
		}
		w, err := strconv.ParseFloat(num.text, 64)
		if err != nil || w < 0 {
			return nil, 0, fmt.Errorf("xq: bad weight %q", num.text)
		}
		weight = w
	}
	return out, weight, nil
}

func (p *parser) parsePick() (*PickClause, error) {
	if err := p.advance(); err != nil { // consume "Pick"
		return nil, err
	}
	v, err := p.expect(tokVar, "variable")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("using"); err != nil {
		return nil, err
	}
	if !p.keyword("pickfoo") {
		return nil, fmt.Errorf("xq: only the PickFoo pick criterion is supported, found %q", p.cur.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	arg, err := p.expect(tokVar, "variable argument")
	if err != nil {
		return nil, err
	}
	out := &PickClause{Var: v.text, ArgVar: arg.text}
	if p.cur.kind == tokComma {
		if err := p.advance(); err != nil {
			return nil, err
		}
		num, err := p.expect(tokNumber, "threshold")
		if err != nil {
			return nil, err
		}
		th, err := strconv.ParseFloat(num.text, 64)
		if err != nil {
			return nil, fmt.Errorf("xq: bad threshold %q: %w", num.text, err)
		}
		out.Threshold = th
		out.HasThresh = true
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	// Tolerate the stray extra ')' that appears in the paper's Fig. 10
	// ("Pick $a using PickFoo($a))").
	if p.cur.kind == tokRParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parseReturn captures the raw template: everything from after the Return
// keyword up to (but excluding) a top-level Sortby or Threshold keyword.
func (p *parser) parseReturn() (*ReturnClause, error) {
	// The current token is "Return"; the raw template starts at the raw
	// lexer position. Scan forward for a stop keyword outside angle
	// brackets and braces.
	rest := p.lx.rest()
	stop := len(rest)
	depth := 0
	lower := strings.ToLower(rest)
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '<', '{':
			depth++
		case '>', '}':
			if depth > 0 {
				depth--
			}
		}
		if depth == 0 && (hasKeywordAt(lower, i, "sortby") || hasKeywordAt(lower, i, "threshold")) {
			stop = i
			break
		}
	}
	raw := rest[:stop]
	p.lx.skipTo(p.lx.pos + stop)
	if err := p.advance(); err != nil {
		return nil, err
	}
	return &ReturnClause{Raw: strings.TrimSpace(raw)}, nil
}

func hasKeywordAt(lower string, i int, kw string) bool {
	if !strings.HasPrefix(lower[i:], kw) {
		return false
	}
	if i > 0 && isIdentRune(rune(lower[i-1])) {
		return false
	}
	end := i + len(kw)
	if end < len(lower) && isIdentRune(rune(lower[end])) {
		return false
	}
	return true
}

func (p *parser) parseThreshold() (*ThresholdClause, error) {
	if err := p.advance(); err != nil { // consume "Threshold"
		return nil, err
	}
	v, err := p.expect(tokVar, "variable")
	if err != nil {
		return nil, err
	}
	out := &ThresholdClause{Var: v.text}
	if _, err := p.expect(tokSlash, "/"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAt, "@"); err != nil {
		return nil, err
	}
	if !p.keyword("score") {
		return nil, fmt.Errorf("xq: threshold must reference @score, found %q", p.cur.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.cur.kind == tokGt {
		if err := p.advance(); err != nil {
			return nil, err
		}
		num, err := p.expect(tokNumber, "threshold value")
		if err != nil {
			return nil, err
		}
		val, err := strconv.ParseFloat(num.text, 64)
		if err != nil {
			return nil, fmt.Errorf("xq: bad threshold value %q: %w", num.text, err)
		}
		out.MinScore = val
		out.HasMin = true
	}
	if p.keyword("stop") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("after"); err != nil {
			return nil, err
		}
		num, err := p.expect(tokNumber, "stop-after count")
		if err != nil {
			return nil, err
		}
		k, err := strconv.Atoi(num.text)
		if err != nil {
			return nil, fmt.Errorf("xq: bad stop-after count %q: %w", num.text, err)
		}
		out.StopK = k
		out.HasStopK = true
	}
	if !out.HasMin && !out.HasStopK {
		return nil, fmt.Errorf("xq: threshold clause needs > V and/or stop after K")
	}
	return out, nil
}

package xq

import (
	"strings"
	"testing"
)

const query1Src = `
For $a in document("articles.xml")//article/descendant-or-self::*
Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
Pick $a using PickFoo($a)
Return
  <result>
    <score>$a/@score</score>
    { $a }
  </result>
Sortby(score)
Threshold $a/@score > 4 stop after 5
`

const query2Src = `
For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/descendant-or-self::*
Score $a using ScoreFoo($a, {"search engine"}, {"internet", "information retrieval"})
Pick $a using PickFoo($a))
Return <result><score>$a/@score</score>{ $a }</result>
Sortby(score)
Threshold $a/@score > 4 stop after 5
`

func TestParseQuery1(t *testing.T) {
	q, err := Parse(query1Src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Fors[0].Var != "a" {
		t.Errorf("For var = %q", q.Fors[0].Var)
	}
	if q.Fors[0].Path.Document != "articles.xml" {
		t.Errorf("document = %q", q.Fors[0].Path.Document)
	}
	if len(q.Fors[0].Path.Steps) != 2 {
		t.Fatalf("steps = %d, want 2: %v", len(q.Fors[0].Path.Steps), q.Fors[0].Path.Steps)
	}
	if q.Fors[0].Path.Steps[0].Kind != StepDescendant || q.Fors[0].Path.Steps[0].Name != "article" {
		t.Errorf("step0 = %v", q.Fors[0].Path.Steps[0])
	}
	if q.Fors[0].Path.Steps[1].Kind != StepDescendantOrSelf {
		t.Errorf("step1 = %v", q.Fors[0].Path.Steps[1])
	}
	if q.Score == nil || q.Score.Var != "a" || q.Score.ArgVar != "a" {
		t.Fatalf("score clause = %+v", q.Score)
	}
	if len(q.Score.Primary) != 1 || q.Score.Primary[0] != "search engine" {
		t.Errorf("primary = %v", q.Score.Primary)
	}
	if len(q.Score.Secondary) != 2 || q.Score.Secondary[1] != "information retrieval" {
		t.Errorf("secondary = %v", q.Score.Secondary)
	}
	if q.Pick == nil || q.Pick.HasThresh {
		t.Errorf("pick clause = %+v", q.Pick)
	}
	if q.Return == nil || !strings.Contains(q.Return.Raw, "<result>") {
		t.Errorf("return clause = %+v", q.Return)
	}
	if !q.SortBy {
		t.Errorf("sortby missing")
	}
	if q.Threshold == nil || !q.Threshold.HasMin || q.Threshold.MinScore != 4 ||
		!q.Threshold.HasStopK || q.Threshold.StopK != 5 {
		t.Errorf("threshold = %+v", q.Threshold)
	}
}

func TestParseQuery2WithPredicate(t *testing.T) {
	q, err := Parse(query2Src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// //article [pred] /descendant-or-self::*
	if len(q.Fors[0].Path.Steps) != 3 {
		t.Fatalf("steps = %d: %v", len(q.Fors[0].Path.Steps), q.Fors[0].Path.Steps)
	}
	pred := q.Fors[0].Path.Steps[1].Pred
	if pred == nil {
		t.Fatalf("predicate missing")
	}
	if len(pred.Names) != 2 || pred.Names[0] != "author" || pred.Names[1] != "sname" {
		t.Errorf("pred names = %v", pred.Names)
	}
	if !pred.Text || pred.Value != "Doe" || pred.Exists {
		t.Errorf("pred = %+v", pred)
	}
}

func TestParseScoreWeights(t *testing.T) {
	q, err := Parse(`For $a in document("d")//p Score $a using ScoreFoo($a, {"x"} weight 0.9, {"y"} weight 0.3)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Score.PrimaryWeight != 0.9 || q.Score.SecondaryWeight != 0.3 {
		t.Errorf("weights = %v / %v", q.Score.PrimaryWeight, q.Score.SecondaryWeight)
	}
	// Defaults are ScoreFoo's 0.8 / 0.6.
	q, err = Parse(`For $a in document("d")//p Score $a using ScoreFoo($a, {"x"}, {"y"})`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Score.PrimaryWeight != 0.8 || q.Score.SecondaryWeight != 0.6 {
		t.Errorf("default weights = %v / %v", q.Score.PrimaryWeight, q.Score.SecondaryWeight)
	}
	// Weighted clauses round-trip through String().
	q, err = Parse(`For $a in document("d")//p Score $a using ScoreFoo($a, {"x"} weight 0.9, {})`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.Score.PrimaryWeight != 0.9 {
		t.Errorf("weight lost in round trip")
	}
	// Negative weight rejected.
	if _, err := Parse(`For $a in document("d")//p Score $a using ScoreFoo($a, {"x"} weight bad, {})`); err == nil {
		t.Errorf("bad weight accepted")
	}
}

func TestParsePickThresholdArg(t *testing.T) {
	q, err := Parse(`For $a in document("d")//p Score $a using ScoreFoo($a, {"x"}, {}) Pick $a using PickFoo($a, 1.5)`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Pick.HasThresh || q.Pick.Threshold != 1.5 {
		t.Errorf("pick = %+v", q.Pick)
	}
}

func TestParseTypographicQuotes(t *testing.T) {
	q, err := Parse("For $a in document(‘‘articles.xml’’)//article Score $a using ScoreFoo($a, {‘‘search engine’’}, {})")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Fors[0].Path.Document != "articles.xml" {
		t.Errorf("document = %q", q.Fors[0].Path.Document)
	}
	if q.Score.Primary[0] != "search engine" {
		t.Errorf("primary = %v", q.Score.Primary)
	}
}

func TestParseAttributePredicate(t *testing.T) {
	q, err := Parse(`For $r in document("reviews.xml")//review[@id="1"]`)
	if err != nil {
		t.Fatal(err)
	}
	pred := q.Fors[0].Path.Steps[1].Pred
	if pred == nil || pred.Attr != "id" || pred.Value != "1" {
		t.Errorf("pred = %+v", pred)
	}
}

func TestParseExistencePredicate(t *testing.T) {
	q, err := Parse(`For $r in document("d")//review[rating]`)
	if err != nil {
		t.Fatal(err)
	}
	pred := q.Fors[0].Path.Steps[1].Pred
	if pred == nil || !pred.Exists || len(pred.Names) != 1 {
		t.Errorf("pred = %+v", pred)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`Score $a using ScoreFoo($a, {})`, // no For
		`For $a in //article`,             // missing document()
		`For $a in document("d")`,         // no steps
		`For $a in document("d")//a Score $a using Other($a)`, // unknown fn
		`For $a in document("d")//a Sortby(rank)`,             // unsupported sort key
		`For $a in document("d")//a Threshold $a/@score`,      // empty threshold
		`For $a in document("d")//a Threshold $a/@rank > 1`,   // wrong attr
		`For $a in document("d")//a[`,                         // broken predicate
		`For $a in document("d")//a "trailing"`,               // trailing junk
		`For $a in document("d)//a`,                           // unterminated string
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q, err := Parse(query1Src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := q.String()
	q2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse of %q: %v", rendered, err)
	}
	if q2.String() != rendered {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", rendered, q2.String())
	}
}

func TestParseDescendantOrSelfNotLastRejected(t *testing.T) {
	// Parser accepts it; the engine rejects at evaluation. Parse-level we
	// only check it doesn't crash.
	q, err := Parse(`For $a in document("d")//article/descendant-or-self::*`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Fors[0].Path.Steps[len(q.Fors[0].Path.Steps)-1].Kind != StepDescendantOrSelf {
		t.Errorf("ad* step missing")
	}
}

package xq

import (
	"fmt"
	"strings"

	"repro/internal/xmltree"
)

// Render instantiates the query's Return template for one result, as the
// Fig. 10 queries do: `{ $var }` splices the bound element's XML,
// `$var/@score` (inside or outside an element) becomes the score, and
// `$var/@sim` the similarity component of join results. A query without a
// Return clause renders the canonical shape
// <result><score>…</score>…</result>.
func (q *Query) Render(r Result) string {
	tmpl := ""
	if q.Return != nil {
		tmpl = q.Return.Raw
	}
	if strings.TrimSpace(tmpl) == "" {
		var sb strings.Builder
		sb.WriteString("<result>\n")
		fmt.Fprintf(&sb, "  <score>%g</score>\n", r.Score)
		sb.WriteString(indent(xmltree.XMLString(r.Node), "  "))
		if r.Right != nil {
			sb.WriteString(indent(xmltree.XMLString(r.Right), "  "))
		}
		sb.WriteString("</result>\n")
		return sb.String()
	}
	out := tmpl
	for _, v := range q.boundVars() {
		// Score and sim references first (they contain the variable name).
		out = strings.ReplaceAll(out, "$"+v+"/@score", fmt.Sprintf("%g", r.Score))
		out = strings.ReplaceAll(out, "$"+v+"/@sim", fmt.Sprintf("%g", r.Sim))
	}
	// Element splices: { $var } with optional inner spacing. The component
	// variable splices the result subtree; in join queries the right-side
	// For variable splices the joined element.
	compVar, rightVar := q.spliceVars()
	out = spliceVar(out, compVar, r.Node)
	if rightVar != "" {
		out = spliceVar(out, rightVar, r.Right)
	}
	if !strings.HasSuffix(out, "\n") {
		out += "\n"
	}
	return out
}

// boundVars lists every variable the query binds or defines.
func (q *Query) boundVars() []string {
	var out []string
	for _, f := range q.Fors {
		out = append(out, f.Var)
	}
	if q.Let != nil {
		out = append(out, q.Let.Var)
	}
	if q.Combine != nil {
		out = append(out, q.Combine.Var)
	}
	return out
}

// spliceVars returns the variable whose binding is the result component,
// and (for joins) the right-side variable.
func (q *Query) spliceVars() (comp, right string) {
	if len(q.Fors) >= 3 {
		return q.Fors[2].Var, q.Fors[1].Var
	}
	return q.Fors[0].Var, ""
}

func spliceVar(tmpl, v string, n *xmltree.Node) string {
	if v == "" {
		return tmpl
	}
	xml := ""
	if n != nil {
		xml = strings.TrimRight(xmltree.XMLString(n), "\n")
	}
	for _, form := range []string{"{ $" + v + " }", "{$" + v + "}", "{ $" + v + "}", "{$" + v + " }"} {
		tmpl = strings.ReplaceAll(tmpl, form, xml)
	}
	return tmpl
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

package xq

import (
	"strings"
	"testing"
)

func TestRenderWithTemplate(t *testing.T) {
	e := newEngine(t)
	q, err := Parse(query2Src)
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	out := q.Render(results[0])
	if !strings.Contains(out, "<result>") || !strings.Contains(out, "</result>") {
		t.Errorf("template structure lost:\n%s", out)
	}
	if !strings.Contains(out, "<score>5</score>") {
		t.Errorf("score not substituted:\n%s", out)
	}
	if !strings.Contains(out, "<chapter>") || !strings.Contains(out, "Search and Retrieval") {
		t.Errorf("element not spliced:\n%s", out)
	}
	if strings.Contains(out, "$a") {
		t.Errorf("unresolved variable remains:\n%s", out)
	}
}

func TestRenderCanonicalWithoutTemplate(t *testing.T) {
	e := newEngine(t)
	src := `
		For $a in document("articles.xml")//article/descendant-or-self::*
		Score $a using ScoreFoo($a, {"search engine"}, {})
		Sortby(score)
		Threshold $a/@score stop after 1`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	out := q.Render(results[0])
	if !strings.HasPrefix(out, "<result>") {
		t.Errorf("canonical shape missing:\n%s", out)
	}
	if !strings.Contains(out, "<score>") {
		t.Errorf("score missing:\n%s", out)
	}
}

func TestRenderJoinTemplate(t *testing.T) {
	e := newEngine(t)
	q, err := Parse(query3Src)
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	out := q.Render(results[0])
	if !strings.Contains(out, "<tix_prod_root>") {
		t.Errorf("join template lost:\n%s", out)
	}
	if !strings.Contains(out, "<chapter>") {
		t.Errorf("component not spliced:\n%s", out)
	}
	if !strings.Contains(out, "<review") {
		t.Errorf("right side not spliced:\n%s", out)
	}
	if !strings.Contains(out, "<score>7</score>") {
		t.Errorf("combined score not substituted:\n%s", out)
	}
}

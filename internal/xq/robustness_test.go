package xq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds the parser random byte soup and random
// recombinations of real query fragments; it must always return (possibly
// an error), never panic.
func TestParseNeverPanics(t *testing.T) {
	fragments := []string{
		"For", "$a", "in", "document", `("articles.xml")`, "//article",
		"/descendant-or-self::*", `[/author/sname/text()="Doe"]`, "Score",
		"using", "ScoreFoo", "($a,", `{"search engine"}`, ",", "{})",
		"Pick", "PickFoo($a)", "Return", "<result>{$a}</result>",
		"Sortby(score)", "Threshold", "$a/@score", ">", "4", "stop after 5",
		"weight", "0.9", "‘‘odd’’", "{", "}", "[", "]", "(", ")", ":=",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < rng.Intn(30); i++ {
			sb.WriteString(fragments[rng.Intn(len(fragments))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestParseRandomBytes(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEvalNeverPanicsOnValidParses runs any fragment soup that happens to
// parse through the engine; errors are fine, panics are not.
func TestEvalNeverPanicsOnValidParses(t *testing.T) {
	e := newEngine(t)
	fragments := []string{
		`For $a in document("articles.xml")//article`,
		`For $a in document("articles.xml")//p`,
		`For $a in document("articles.xml")//article/descendant-or-self::*`,
		`For $a in document("nope.xml")//x`,
		`For $a in document("articles.xml")//article[/author/sname/text()="Doe"]`,
	}
	suffixes := []string{
		``,
		` Score $a using ScoreFoo($a, {"search engine"}, {})`,
		` Score $a using ScoreFoo($a, {"search engine"}, {"internet"}) Pick $a using PickFoo($a)`,
		` Score $a using ScoreFoo($a, {""}, {})`,
		` Sortby(score)`,
		` Score $a using ScoreFoo($a, {"x"}, {}) Threshold $a/@score > 0 stop after 2`,
	}
	for _, f := range fragments {
		for _, s := range suffixes {
			src := f + s
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on %q: %v", src, r)
					}
				}()
				_, _ = e.EvalString(src)
			}()
		}
	}
}
